"""An MPI job: ranks placed on nodes, operations lowered to programs.

:class:`Job` is the main user-facing handle of the library::

    fabric = OpenSM(net, lmc=2, lid_policy="quadrant").run(ParxRouting())
    job = Job(fabric, nodes=placement, pml=ParxBfoPml())
    result = FlowSimulator(net).run(job.alltoall(1 * MIB))

It binds a routed fabric, a rank-to-node mapping (one rank per node,
the paper's execution model) and a PML, and materialises rank-level
phase lists into :class:`~repro.sim.flows.Program` objects with
resolved link paths.  Resolved paths are cached per (src, dst, LID
index) since collectives reuse pairs across rounds.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.ib.fabric import Fabric
from repro.mpi import collectives as coll
from repro.mpi.collectives import RankPhase
from repro.mpi.pml import Ob1Pml, Pml
from repro.sim.batch import MessageBatch, PathPool
from repro.sim.flows import Message, Phase, Program


class Job:
    """Ranks on nodes over a routed fabric."""

    def __init__(
        self,
        fabric: Fabric,
        nodes: Sequence[int],
        pml: Pml | None = None,
    ) -> None:
        if len(set(nodes)) != len(nodes):
            raise ConfigurationError("duplicate nodes in the allocation")
        for n in nodes:
            if not fabric.net.is_terminal(n):
                raise ConfigurationError(f"node {n} is not a terminal")
        self.fabric = fabric
        self.nodes = list(nodes)
        self.pml = pml or Ob1Pml()
        # (src, dst, lid index) -> (pool id, path tuple): one dict probe
        # per message on the materialize hot path.
        self._resolve_cache: dict[
            tuple[int, int, int], tuple[int, tuple[int, ...]]
        ] = {}
        self._path_version = -1
        # Interned-path pool backing the batches materialize() attaches to
        # each phase: one pool id per cached path, reset with the cache.
        self._pool = PathPool()
        # terminal -> (uplink id, forwarding-table row of its switch) and
        # dlid -> per-row switch paths, feeding the bulk resolution fast
        # path.
        self._uplink_cache: dict[int, tuple[int, int | None]] = {}
        self._dest_cache: dict[int, list] = {}

    @property
    def num_ranks(self) -> int:
        return len(self.nodes)

    def node_of_rank(self, rank: int) -> int:
        return self.nodes[rank]

    # --- lowering ---------------------------------------------------------------
    def materialize(
        self,
        rank_phases: list[RankPhase],
        label: str = "",
        compute_between_phases: float = 0.0,
    ) -> Program:
        """Resolve rank-level phases into a runnable program."""
        program = Program(
            label=label, compute_between_phases=compute_between_phases
        )
        overhead = self.pml.overhead
        for i, rp in enumerate(rank_phases):
            phase = Phase(label=f"{label}[{i}]" if label else f"phase{i}")
            pids: list[int] = []
            sizes: list[float] = []
            srcs: list[int] = []
            dsts: list[int] = []
            for s_rank, d_rank, size in rp:
                src = self.nodes[s_rank]
                dst = self.nodes[d_rank]
                if src == dst:
                    continue  # local copy, no network traffic
                lidx = self.pml.lid_index(self.fabric, src, dst, size)
                pid, path = self._resolve(src, dst, lidx)
                phase.messages.append(
                    Message(
                        src=src,
                        dst=dst,
                        size=float(size),
                        path=path,
                        overhead=overhead,
                        tag=label,
                    )
                )
                pids.append(pid)
                sizes.append(float(size))
                srcs.append(src)
                dsts.append(dst)
            phase.batch = MessageBatch.from_pool(
                self._pool, pids, sizes, overhead, srcs, dsts
            )
            program.phases.append(phase)
        return program

    def _path(self, src: int, dst: int, lidx: int) -> tuple[int, ...]:
        """The pair's interned path tuple (see :meth:`_resolve`)."""
        return self._resolve(src, dst, lidx)[1]

    def _fast_path(self, src: int, dst: int, lidx: int) -> tuple[int, ...] | None:
        """Bulk-resolved path for one pair, or None to fall back.

        Composes the terminal's uplink with the fabric's vectorised
        per-destination switch walk (:meth:`repro.ib.fabric.Fabric.
        dest_paths`) — identical link sequences to ``fabric.path``, one
        numpy walk per destination instead of a Python walk per pair.
        """
        fabric = self.fabric
        up = self._uplink_cache.get(src)
        if up is None:
            uplink = fabric.net.terminal_uplink(src)
            up = (uplink.id, fabric.tables.row_of(uplink.dst))
            self._uplink_cache[src] = up
        uplink_id, row = up
        if row is None:
            return None
        dlid = fabric.lidmap.lid(dst, lidx)
        dp = self._dest_cache.get(dlid)
        if dp is None:
            dp = fabric.dest_paths(dlid)
            self._dest_cache[dlid] = dp
        swpath = dp[row]
        if swpath is None:
            return None
        return (uplink_id, *swpath)

    def _resolve(self, src: int, dst: int, lidx: int) -> tuple[int, tuple[int, ...]]:
        """Interned ``(pool id, path tuple)`` for one pair/LID choice.

        A tuple-interning layer over the fabric's bulk resolution: the
        same pair's path is one shared tuple (and one pool id) across
        every message that uses it.  Topology changes are caught by the
        version check; table rewrites (re-sweeps) go through
        invalidate_paths().
        """
        version = self.fabric.net.version
        if version != self._path_version:
            self._reset_caches()
            self._path_version = version
        key = (src, dst, lidx)
        hit = self._resolve_cache.get(key)
        if hit is None:
            path = self._fast_path(src, dst, lidx)
            if path is None:
                # The bulk walk refused this pair; the per-pair resolve
                # raises the precise diagnostic (or proves it wrong).
                path = tuple(self.fabric.path(src, dst, lidx))
            hit = (self._pool.add(path), path)
            self._resolve_cache[key] = hit
        return hit

    def _reset_caches(self) -> None:
        self._resolve_cache.clear()
        self._uplink_cache.clear()
        self._dest_cache.clear()
        self._pool = PathPool()

    def invalidate_paths(self) -> None:
        """Drop cached paths after the fabric's tables changed.

        An SM re-sweep (:func:`repro.ib.subnet_manager.resweep`) rewrites
        forwarding entries in place; programs materialized afterwards must
        re-resolve against the new tables instead of replaying stale paths
        over dead cables.  Pool ids die with the cache, so batches built
        later never alias pre-sweep paths.
        """
        self._reset_caches()

    # --- MPI operations -----------------------------------------------------------
    def send(self, src_rank: int, dst_rank: int, size: float) -> Program:
        """A single point-to-point transfer."""
        return self.materialize([[(src_rank, dst_rank, size)]], label="send")

    #: Tuned-module switch point from binomial tree to segmented chain
    #: for Bcast/Reduce (Open MPI's decision for large payloads).
    PIPELINE_THRESHOLD: float = 32 * 1024

    def bcast(self, size: float, root: int = 0) -> Program:
        algo = (
            coll.pipeline_bcast
            if size >= self.PIPELINE_THRESHOLD
            else coll.binomial_bcast
        )
        return self.materialize(algo(self.num_ranks, size, root), label="bcast")

    def reduce(self, size: float, root: int = 0) -> Program:
        algo = (
            coll.pipeline_reduce
            if size >= self.PIPELINE_THRESHOLD
            else coll.binomial_reduce
        )
        return self.materialize(algo(self.num_ranks, size, root), label="reduce")

    def gather(self, size: float, root: int = 0, large: bool | None = None) -> Program:
        """Gather; ``large`` forces the linear (incast) algorithm the way
        tuned MPIs switch for big payloads (default: >= 32 KiB)."""
        use_linear = size >= 32 * 1024 if large is None else large
        algo = coll.linear_gather if use_linear else coll.binomial_gather
        return self.materialize(algo(self.num_ranks, size, root), label="gather")

    def scatter(self, size: float, root: int = 0, large: bool | None = None) -> Program:
        use_linear = size >= 32 * 1024 if large is None else large
        algo = coll.linear_scatter if use_linear else coll.binomial_scatter
        return self.materialize(algo(self.num_ranks, size, root), label="scatter")

    def allreduce(self, size: float, algorithm: str = "auto") -> Program:
        """Allreduce; ``algorithm`` in {"auto", "rdbl", "rabenseifner",
        "ring"}.  Auto follows the tuned heuristic: latency-bound
        recursive doubling below 64 KiB, Rabenseifner above."""
        p = self.num_ranks
        if algorithm == "auto":
            algorithm = "rdbl" if size < 64 * 1024 else "rabenseifner"
        if algorithm == "rdbl":
            phases = coll.recursive_doubling_allreduce(p, size)
        elif algorithm == "rabenseifner":
            phases = coll.rabenseifner_allreduce(p, size)
        elif algorithm == "ring":
            phases = coll.ring_allreduce(p, size)
        else:
            raise ConfigurationError(f"unknown allreduce algorithm {algorithm!r}")
        return self.materialize(phases, label=f"allreduce-{algorithm}")

    def allgather(self, size: float, algorithm: str = "auto") -> Program:
        """Allgather; ``algorithm`` in {"auto", "ring", "bruck"}.  Auto
        follows the tuned heuristic: Bruck for small blocks (latency,
        log rounds), ring for large (bandwidth, no payload doubling)."""
        if algorithm == "auto":
            algorithm = "bruck" if size < 32 * 1024 else "ring"
        if algorithm == "ring":
            phases = coll.ring_allgather(self.num_ranks, size)
        elif algorithm == "bruck":
            phases = coll.bruck_allgather(self.num_ranks, size)
        else:
            raise ConfigurationError(f"unknown allgather algorithm {algorithm!r}")
        return self.materialize(phases, label=f"allgather-{algorithm}")

    def reduce_scatter(self, size: float) -> Program:
        """Reduce-scatter of a ``size``-byte vector (each rank keeps its
        reduced ``size/p`` block)."""
        return self.materialize(
            coll.reduce_scatter(self.num_ranks, size), label="reduce_scatter"
        )

    def alltoall(self, size: float) -> Program:
        return self.materialize(
            coll.pairwise_alltoall(self.num_ranks, size), label="alltoall"
        )

    def alltoallv(self, sizes: list[list[float]]) -> Program:
        """Irregular all-to-all: ``sizes[i][j]`` bytes from rank i to j."""
        return self.materialize(
            coll.alltoallv(self.num_ranks, sizes), label="alltoallv"
        )

    def barrier(self) -> Program:
        return self.materialize(
            coll.dissemination_barrier(self.num_ranks), label="barrier"
        )
