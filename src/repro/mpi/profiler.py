"""Communication profiling: the ibprof substitute feeding PARX.

The paper records per-node-pair byte counters with a low-level
InfiniBand profiler (Brown et al. [10]) because MPI-level tracers miss
the point-to-point messages *inside* collectives.  Our collectives are
already expanded to point-to-point phases, so profiling is exact: run
the rank phases through :class:`CommunicationProfiler` and export the
demand matrix normalised to 0..255 as PARX's Algorithm 1 expects
("0 stands for absolutely no bytes transferred ... 255 represents the
highest traffic demand").

Profiles are rank-based and placement-oblivious (paper footnote 6);
:meth:`CommunicationProfiler.demands_for_nodes` is the SAR-style
interface between the job's node allocation and the routing engine.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.errors import ConfigurationError
from repro.mpi.collectives import RankPhase


class CommunicationProfiler:
    """Accumulates rank-to-rank byte counters across operations."""

    def __init__(self) -> None:
        self._bytes: dict[tuple[int, int], float] = {}

    def record(self, rank_phases: Sequence[RankPhase]) -> None:
        """Account every transfer of an expanded collective/pattern."""
        for phase in rank_phases:
            for src, dst, size in phase:
                if src != dst and size > 0:
                    key = (src, dst)
                    self._bytes[key] = self._bytes.get(key, 0.0) + size

    def record_pair(self, src_rank: int, dst_rank: int, size: float) -> None:
        """Account a single point-to-point transfer."""
        self.record([[(src_rank, dst_rank, size)]])

    @property
    def total_bytes(self) -> float:
        return sum(self._bytes.values())

    def rank_demands(self) -> dict[int, dict[int, int]]:
        """Normalised 0..255 rank-based demand matrix.

        Zero traffic maps to absence (0), the heaviest pair to 255, and
        anything in between to at least 1 — matching the paper's
        normalisation semantics.
        """
        if not self._bytes:
            return {}
        peak = max(self._bytes.values())
        out: dict[int, dict[int, int]] = {}
        for (src, dst), b in self._bytes.items():
            level = max(1, math.ceil(255.0 * b / peak))
            out.setdefault(src, {})[dst] = min(255, level)
        return out

    def demands_for_nodes(
        self, nodes: Sequence[int]
    ) -> dict[int, dict[int, int]]:
        """Rank demands re-keyed onto a concrete node allocation.

        This is the job-submission/OpenSM interface of section 4.4.3:
        "combines the profile(s) and selected node allocation ... into a
        node/LID-based demand data file, which PARX uses to re-route the
        fabric prior to the job start."
        """
        rank_d = self.rank_demands()
        out: dict[int, dict[int, int]] = {}
        for src_rank, row in rank_d.items():
            if src_rank >= len(nodes):
                raise ConfigurationError(
                    f"profile mentions rank {src_rank} but the allocation "
                    f"has only {len(nodes)} nodes"
                )
            src_node = nodes[src_rank]
            for dst_rank, level in row.items():
                if dst_rank >= len(nodes):
                    raise ConfigurationError(
                        f"profile mentions rank {dst_rank} but the "
                        f"allocation has only {len(nodes)} nodes"
                    )
                out.setdefault(src_node, {})[nodes[dst_rank]] = level
        return out


def merge_demands(
    *demand_maps: Mapping[int, Mapping[int, int]],
) -> dict[int, dict[int, int]]:
    """Combine node-based demand files of several concurrent jobs.

    Overlapping pairs keep the maximum level (the router should respect
    the hungriest application), mirroring how the paper re-routes once
    for "one (or more) application[s]".
    """
    out: dict[int, dict[int, int]] = {}
    for dm in demand_maps:
        for src, row in dm.items():
            for dst, level in row.items():
                cur = out.setdefault(src, {}).get(dst, 0)
                out[src][dst] = max(cur, level)
    return out
