"""Collective-operation phase expansions at rank granularity.

Every function returns ``list[RankPhase]`` where a ``RankPhase`` is a
list of ``(src_rank, dst_rank, bytes)`` transfers that start together;
consecutive phases are dependency-ordered (the bulk-synchronous
approximation of collective rounds).  :class:`~repro.mpi.job.Job`
materialises these onto a routed fabric.

The algorithms mirror what Open MPI 1.10's tuned module would run for
the paper's single-rank-per-node, medium-size regime: binomial trees
for rooted collectives (with a linear variant for large payloads),
recursive doubling / Rabenseifner for Allreduce, pairwise exchange for
Alltoall, ring for Allgather, dissemination for Barrier, plus Baidu's
ring Allreduce which the paper benchmarks separately (Figure 5a).
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError

RankPhase = list[tuple[int, int, float]]


def _check(p: int, size: float) -> None:
    if p < 1:
        raise ConfigurationError(f"need at least one rank, got {p}")
    if size < 0:
        raise ConfigurationError(f"negative message size {size}")


def binomial_bcast(p: int, size: float, root: int = 0) -> list[RankPhase]:
    """Binomial-tree broadcast: ``ceil(log2 p)`` rounds.

    Round ``r``: every rank that already holds the data forwards it to
    the rank ``2**r`` positions away (mod-rotated so any root works).
    """
    _check(p, size)
    phases: list[RankPhase] = []
    span = 1
    while span < p:
        phase: RankPhase = []
        for i in range(span):
            j = i + span
            if j < p:
                phase.append(((i + root) % p, (j + root) % p, size))
        phases.append(phase)
        span *= 2
    return phases


def binomial_reduce(p: int, size: float, root: int = 0) -> list[RankPhase]:
    """Binomial-tree reduce: the broadcast mirrored in time."""
    _check(p, size)
    phases = binomial_bcast(p, size, root)
    return [
        [(dst, src, size) for src, dst, size in phase]
        for phase in reversed(phases)
    ]


def binomial_gather(p: int, size: float, root: int = 0) -> list[RankPhase]:
    """Binomial gather: subtree payloads double every round.

    Round ``r``: rank ``i`` (relative to root) with the ``2**r`` bit set
    and lower bits clear ships its accumulated subtree — up to ``2**r``
    rank-contributions — to ``i - 2**r``.
    """
    _check(p, size)
    phases: list[RankPhase] = []
    span = 1
    while span < p:
        phase: RankPhase = []
        for i in range(span, p, span * 2):
            blocks = min(span, p - i)
            phase.append(((i + root) % p, (i - span + root) % p, blocks * size))
        phases.append(phase)
        span *= 2
    return phases


def binomial_scatter(p: int, size: float, root: int = 0) -> list[RankPhase]:
    """Binomial scatter: the gather mirrored in time."""
    _check(p, size)
    return [
        [(dst, src, sz) for src, dst, sz in phase]
        for phase in reversed(binomial_gather(p, size, root))
    ]


def linear_gather(p: int, size: float, root: int = 0) -> list[RankPhase]:
    """Linear gather: everyone sends straight to the root (one incast
    phase) — Open MPI's choice for large payloads."""
    _check(p, size)
    phase = [((i + root) % p, root % p, size) for i in range(1, p)]
    return [phase] if phase else []


def linear_scatter(p: int, size: float, root: int = 0) -> list[RankPhase]:
    """Linear scatter: the root streams a block to every rank."""
    _check(p, size)
    phase = [(root % p, (i + root) % p, size) for i in range(1, p)]
    return [phase] if phase else []


def pipeline_bcast(
    p: int, size: float, segments: int = 8, root: int = 0
) -> list[RankPhase]:
    """Segmented chain (pipeline) broadcast — tuned MPIs' large-message
    algorithm.  The payload is cut into ``segments`` pieces streaming
    down the chain ``root -> root+1 -> ...``; at steady state every
    chain edge carries one segment per phase, so the traffic is a
    shift-1 permutation — contention-free even on a linearly placed
    HyperX, which is why the paper's large Bcast shows no single-cable
    collapse (Figure 4a).
    """
    _check(p, size)
    if p == 1 or size <= 0:
        return [] if p == 1 else binomial_bcast(p, size, root)
    segments = max(1, min(segments, p * 4))
    chunk = size / segments
    phases: list[RankPhase] = []
    for t in range(segments + p - 2):
        phase: RankPhase = []
        for i in range(p - 1):
            seg = t - i
            if 0 <= seg < segments:
                phase.append(((i + root) % p, (i + 1 + root) % p, chunk))
        if phase:
            phases.append(phase)
    return phases


def pipeline_reduce(
    p: int, size: float, segments: int = 8, root: int = 0
) -> list[RankPhase]:
    """Segmented chain reduce: the pipeline broadcast mirrored in time."""
    _check(p, size)
    return [
        [(dst, src, sz) for src, dst, sz in phase]
        for phase in reversed(pipeline_bcast(p, size, segments, root))
    ]


def recursive_doubling_allreduce(p: int, size: float) -> list[RankPhase]:
    """Recursive-doubling Allreduce with the MPICH remainder handling.

    With ``p`` not a power of two the ``rem = p - 2**k`` leading odd
    ranks first fold into their even neighbours, the ``2**k`` survivors
    run ``k`` pairwise-exchange rounds on the full payload, and the
    folded ranks receive the result back.
    """
    _check(p, size)
    if p == 1:
        return []
    k = p.bit_length() - 1
    pof2 = 1 << k
    rem = p - pof2
    phases: list[RankPhase] = []
    if rem:
        phases.append([(2 * i + 1, 2 * i, size) for i in range(rem)])

    def core_to_rank(c: int) -> int:
        # Core ranks: the even halves of folded pairs, then the tail.
        return 2 * c if c < rem else c + rem

    span = 1
    while span < pof2:
        phase: RankPhase = []
        for c in range(pof2):
            partner = c ^ span
            phase.append((core_to_rank(c), core_to_rank(partner), size))
        phases.append(phase)
        span *= 2
    if rem:
        phases.append([(2 * i, 2 * i + 1, size) for i in range(rem)])
    return phases


def rabenseifner_allreduce(p: int, size: float) -> list[RankPhase]:
    """Rabenseifner's Allreduce: reduce-scatter then allgather.

    Halving/doubling needs a power of two; other counts fall back to
    recursive doubling (what tuned implementations effectively do after
    folding the remainder).
    """
    _check(p, size)
    if p == 1:
        return []
    if p & (p - 1):
        return recursive_doubling_allreduce(p, size)
    phases: list[RankPhase] = []
    k = p.bit_length() - 1
    # Reduce-scatter by recursive halving: exchanged payload halves
    # every round.
    chunk = size / 2
    span = 1
    for _ in range(k):
        phase = [(i, i ^ span, chunk) for i in range(p)]
        phases.append(phase)
        span *= 2
        chunk /= 2
    # Allgather by recursive doubling: payload doubles back up.
    chunk = size / p
    span = p >> 1
    for _ in range(k):
        phase = [(i, i ^ span, chunk) for i in range(p)]
        phases.append(phase)
        span >>= 1
        chunk *= 2
    return phases


def ring_allreduce(p: int, size: float) -> list[RankPhase]:
    """Baidu DeepBench's ring Allreduce: ``2(p-1)`` pipelined rounds.

    Every round each rank passes one ``size/p`` chunk to its right
    neighbour — reduce-scatter for the first ``p-1`` rounds, allgather
    for the rest.  Bandwidth-optimal, latency-poor: the contrast the
    paper exploits in Figure 5a.
    """
    _check(p, size)
    if p == 1:
        return []
    chunk = size / p
    phase: RankPhase = [(i, (i + 1) % p, chunk) for i in range(p)]
    return [list(phase) for _ in range(2 * (p - 1))]


def ring_allgather(p: int, size: float) -> list[RankPhase]:
    """Ring Allgather: ``p-1`` rounds of neighbour forwarding."""
    _check(p, size)
    if p == 1:
        return []
    phase: RankPhase = [(i, (i + 1) % p, size) for i in range(p)]
    return [list(phase) for _ in range(p - 1)]


def reduce_scatter(p: int, size: float) -> list[RankPhase]:
    """Recursive-halving reduce-scatter: each rank ends up with the
    reduced ``size/p`` block it owns.  Exchanged payload halves every
    round (power-of-two counts; others pairwise-fold first like the
    Allreduce remainder handling)."""
    _check(p, size)
    if p == 1:
        return []
    if p & (p - 1):
        # Fold the remainder onto the lower power of two, then recurse.
        k = p.bit_length() - 1
        pof2 = 1 << k
        rem = p - pof2
        phases: list[RankPhase] = [
            [(2 * i + 1, 2 * i, size) for i in range(rem)]
        ]
        core = reduce_scatter(pof2, size)

        def core_to_rank(c: int) -> int:
            return 2 * c if c < rem else c + rem

        for phase in core:
            phases.append(
                [(core_to_rank(s), core_to_rank(d), sz) for s, d, sz in phase]
            )
        return phases
    phases = []
    chunk = size / 2
    span = 1
    while span < p:
        phases.append([(i, i ^ span, chunk) for i in range(p)])
        span *= 2
        chunk /= 2
    return phases


def bruck_allgather(p: int, size: float) -> list[RankPhase]:
    """Bruck's Allgather: ``ceil(log2 p)`` rounds with doubling payload
    — the latency-optimal alternative to the ring for small blocks."""
    _check(p, size)
    if p == 1:
        return []
    phases: list[RankPhase] = []
    span = 1
    gathered = 1.0
    while span < p:
        blocks = min(gathered, p - span)
        phases.append([(i, (i - span) % p, blocks * size) for i in range(p)])
        gathered += blocks
        span *= 2
    return phases


def alltoallv(
    p: int, sizes: "list[list[float]]"
) -> list[RankPhase]:
    """Pairwise-exchange Alltoallv: ``sizes[i][j]`` bytes from rank i to
    rank j (qb@ll's and Graph500's irregular exchanges, paper Table 2).
    """
    if len(sizes) != p or any(len(row) != p for row in sizes):
        raise ConfigurationError("sizes must be a p x p matrix")
    for row in sizes:
        for v in row:
            if v < 0:
                raise ConfigurationError(f"negative block size {v}")
    phases: list[RankPhase] = []
    for k in range(1, p):
        phase: RankPhase = []
        for i in range(p):
            j = (i + k) % p
            if sizes[i][j] > 0:
                phase.append((i, j, sizes[i][j]))
        if phase:
            phases.append(phase)
    return phases


def pairwise_alltoall(p: int, size: float) -> list[RankPhase]:
    """Pairwise-exchange Alltoall: ``p-1`` rounds of rotated shifts.

    Round ``k``: rank ``i`` sends its block for ``(i + k) mod p``.  Each
    round is a full shift permutation — the pattern that exposes the
    HyperX single-cable bottleneck in Figures 1 and 4f.
    """
    _check(p, size)
    return [
        [(i, (i + k) % p, size) for i in range(p)]
        for k in range(1, p)
    ]


def dissemination_barrier(p: int) -> list[RankPhase]:
    """Dissemination barrier: ``ceil(log2 p)`` zero-byte notify rounds."""
    _check(p, 0)
    phases: list[RankPhase] = []
    span = 1
    while span < p:
        phases.append([(i, (i + span) % p, 0.0) for i in range(p)])
        span *= 2
    return phases


def rank_phase_bytes(phases: list[RankPhase]) -> float:
    """Total bytes across all phases (tests: conservation checks)."""
    return sum(sz for phase in phases for _, _, sz in phase)
