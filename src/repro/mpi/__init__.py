"""MPI machinery: rank mapping, collectives, PML policies, profiling.

This package turns MPI-level operations into the simulator's
:class:`~repro.sim.flows.Program` containers:

* :mod:`~repro.mpi.collectives` — algorithmic phase expansions (binomial
  trees, recursive doubling, Rabenseifner, ring, pairwise exchange,
  dissemination) at *rank* granularity,
* :mod:`~repro.mpi.pml` — the point-to-point messaging layers that pick
  a destination LID per message: Open MPI's default ``ob1``, the
  multi-LID ``bfo``, and the paper's modified bfo implementing Table 1,
* :mod:`~repro.mpi.job` — ranks-on-nodes with path resolution & caching,
* :mod:`~repro.mpi.profiler` — the low-level traffic profiler substitute
  whose normalised 0..255 demand matrices feed PARX.
"""

from repro.mpi.collectives import (
    binomial_bcast,
    binomial_reduce,
    pipeline_bcast,
    pipeline_reduce,
    binomial_gather,
    binomial_scatter,
    linear_gather,
    linear_scatter,
    recursive_doubling_allreduce,
    rabenseifner_allreduce,
    ring_allreduce,
    ring_allgather,
    bruck_allgather,
    reduce_scatter,
    alltoallv,
    pairwise_alltoall,
    dissemination_barrier,
)
from repro.mpi.pml import Ob1Pml, BfoPml, ParxBfoPml, Pml
from repro.mpi.job import Job
from repro.mpi.profiler import CommunicationProfiler

__all__ = [
    "binomial_bcast",
    "binomial_reduce",
    "pipeline_bcast",
    "pipeline_reduce",
    "binomial_gather",
    "binomial_scatter",
    "linear_gather",
    "linear_scatter",
    "recursive_doubling_allreduce",
    "rabenseifner_allreduce",
    "ring_allreduce",
    "ring_allgather",
    "bruck_allgather",
    "reduce_scatter",
    "alltoallv",
    "pairwise_alltoall",
    "dissemination_barrier",
    "Pml",
    "Ob1Pml",
    "BfoPml",
    "ParxBfoPml",
    "Job",
    "CommunicationProfiler",
]
