"""Persistent shared-memory worker pool for destination-sharded passes.

The routing sweep, the re-sweep diff walk, and the static analyses all
iterate over *destination columns* — and columns are independent: no
kernel in this codebase lets one destination's result feed another's
(the SSSP family, which does, cannot batch and never reaches this
module).  That independence is the whole parallelisation story:

* shard the destination columns of a pass across worker processes,
* let every worker run the *same* per-column kernels on its shard,
* merge with an order-independent reduction (disjoint column writes,
  integer sums, set unions).

Results are therefore **bit-identical at any worker count**, including
one — the only thing sharding changes is which process executes a
column, never the operations applied to it.

Mechanics
---------
Workers are persistent ``spawn`` processes (one pool per process,
reused across jobs) fed through per-worker task queues.  Bulk inputs —
the CSR switch-graph arrays, the engine's weight-profile blocks, the
dense next-hop matrix — travel through ``multiprocessing.shared_memory``
segments that workers attach zero-copy; only small descriptors and
per-shard index arrays ride the queues.  Outputs land either directly
in a shared dense buffer (tree sweeps write plid columns; table walks
write verdict columns) or come back over the result queue when they are
small per-worker partials (per-link load sums, incidence key sets).

Every entry point degrades gracefully to the serial path: worker count
of one, column counts under :func:`get_column_floor`, pool spawn
failure, or a worker dying mid-job all return the caller to its
destination-chunked loop (and count a ``serial_fallbacks`` stat).
A failed pool is torn down and respawned on the next job.

Control surface
---------------
``REPRO_SWEEP_WORKERS`` (env, at import; ``auto``/``0`` = cpu count) or
:func:`set_sweep_workers` / ``with sweep_workers(4): ...`` at runtime;
``REPRO_SWEEP_FLOOR`` / :func:`set_column_floor` for the column floor;
:func:`parallel_stats` mirrors the fabric-cache counters for ledgers.
"""

from __future__ import annotations

import atexit
import itertools
import os
import queue as queue_mod
import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Callable, Iterator

import numpy as np

#: Sweep workers when ``REPRO_SWEEP_WORKERS`` is unset: serial.  Tests
#: and single-core CI stay deterministic-and-cheap by default; callers
#: opt into parallelism explicitly.
DEFAULT_SWEEP_WORKERS = 1

#: Minimum destination columns before a pass is worth sharding: below
#: this the spawn/attach overhead beats the kernel time.  Doubles as
#: the incremental re-sweep threshold — a fabric event touching fewer
#: columns recomputes them serially.
DEFAULT_COLUMN_FLOOR = 128


def _workers_from_env() -> int:
    raw = os.environ.get("REPRO_SWEEP_WORKERS", "").strip().lower()
    if not raw:
        return DEFAULT_SWEEP_WORKERS
    if raw in {"auto", "0"}:
        return max(1, os.cpu_count() or 1)
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_SWEEP_WORKERS


_sweep_workers = _workers_from_env()
_column_floor = max(
    1, int(os.environ.get("REPRO_SWEEP_FLOOR", DEFAULT_COLUMN_FLOOR))
)

_stats = {
    "parallel_sweeps": 0,
    "parallel_walks": 0,
    "parallel_loads": 0,
    "parallel_scans": 0,
    "serial_fallbacks": 0,
    "pool_spawns": 0,
}


def get_sweep_workers() -> int:
    """The configured sweep worker count (1 = serial)."""
    return _sweep_workers


def set_sweep_workers(n: int) -> int:
    """Set the sweep worker count; returns the previous value.

    Values below 1 clamp to 1 (serial).  Also clears the broken-spawn
    latch, so explicitly re-enabling parallelism retries a pool that
    previously failed to start.
    """
    global _sweep_workers, _spawn_broken
    previous = _sweep_workers
    _sweep_workers = max(1, int(n))
    _spawn_broken = False
    return previous


@contextmanager
def sweep_workers(n: int) -> Iterator[None]:
    """``with sweep_workers(4): ...`` — scoped worker-count override."""
    previous = set_sweep_workers(n)
    try:
        yield
    finally:
        set_sweep_workers(previous)


def get_column_floor() -> int:
    """Minimum columns before any pass goes parallel."""
    return _column_floor


def set_column_floor(n: int) -> int:
    """Set the parallel column floor; returns the previous value."""
    global _column_floor
    previous = _column_floor
    _column_floor = max(1, int(n))
    return previous


@contextmanager
def column_floor(n: int) -> Iterator[None]:
    """Scoped override of the parallel column floor (tests)."""
    previous = set_column_floor(n)
    try:
        yield
    finally:
        set_column_floor(previous)


def parallel_stats() -> dict[str, int]:
    """Counters since the last reset (jobs by kind, fallbacks, spawns)."""
    return dict(_stats)


def reset_parallel_stats() -> None:
    for key in _stats:
        _stats[key] = 0


class SweepPoolError(RuntimeError):
    """A sweep worker died or errored mid-job (caller falls back serial)."""


# --------------------------------------------------------------------------
# Worker side: ops over attached arrays.
#
# Each task is a dict of small values plus *descriptors* for the bulk
# arrays ({"name", "shape", "dtype"} of a shared-memory segment).  The
# helpers accept plain ndarrays in the same slots, so every op is also
# callable in-process — the fuzz tests drive them without a pool.
# --------------------------------------------------------------------------


class _ArrayGraph:
    """Attribute bag satisfying the kernels' graph-view Protocols."""

    def __init__(self, **arrays: Any) -> None:
        self.__dict__.update(arrays)


def _attach(desc: dict[str, Any], shms: list[SharedMemory]) -> np.ndarray:
    # Python 3.11 registers attach-side segments with the resource
    # tracker too; pool workers inherit the *parent's* tracker process,
    # whose name cache is a set, so the attach registration is an
    # idempotent re-add of the parent's create-side entry and the
    # parent's unlink() unregisters it exactly once.  (An explicit
    # unregister here would remove the parent's entry instead.)
    shm = SharedMemory(name=desc["name"])
    shms.append(shm)
    return np.ndarray(
        tuple(desc["shape"]), dtype=np.dtype(desc["dtype"]), buffer=shm.buf
    )


def _maybe_attach(obj: Any, shms: list[SharedMemory]) -> Any:
    if isinstance(obj, dict) and "name" in obj and "dtype" in obj:
        return _attach(obj, shms)
    return obj


def _weight_evaluator(
    spec: dict[str, Any], shms: list[SharedMemory]
) -> Callable[[np.ndarray], np.ndarray]:
    """Compile a weight spec into ``cols -> (num_links,) | (num_links, k)``.

    ``cols`` are *global* column indices of the sweep; per-column specs
    evaluate exactly the serial engine's per-column expressions, so the
    produced weights are bit-equal to the parent's
    (see ``weights_block_core`` in :mod:`repro.routing.fthx`).
    """
    kind = spec["kind"]
    if kind == "unit":
        unit = np.ones(int(spec["num_links"]), dtype=np.float64)
        return lambda cols: unit
    if kind == "array":
        data = _maybe_attach(spec["data"], shms)
        return lambda cols: data
    if kind == "fthx":
        from repro.routing.fthx import weights_block_core

        arr = {
            key: _maybe_attach(spec[key], shms)
            for key in (
                "base", "sw_ids", "sw_dim", "sw_src_val", "sw_dst_val",
                "sw_src_coords", "cds", "dlids",
            )
        }
        rotations = (
            _maybe_attach(spec["rotations"], shms)
            if "rotations" in spec else None
        )
        ndim = int(spec["ndim"])

        def evaluate(cols: np.ndarray) -> np.ndarray:
            return weights_block_core(
                arr["base"], arr["sw_ids"], arr["sw_dim"],
                arr["sw_src_val"], arr["sw_dst_val"], arr["sw_src_coords"],
                ndim, arr["cds"][cols], arr["dlids"][cols],
                None if rotations is None else rotations[cols],
            )

        return evaluate
    raise ValueError(f"unknown weight spec kind {kind!r}")


def _op_tree(task: dict[str, Any], shms: list[SharedMemory]) -> None:
    """Route a shard of destination columns into the shared plid buffer.

    Splits the shard into ``block_cols``-wide kernel calls (the same
    budget the serial sweep uses); columns are independent, so the
    sub-block boundaries cannot change a single output bit.
    """
    from repro.routing.arrays import tree_core_batch

    graph_desc = task["graph"]
    graph = _ArrayGraph(
        num_switches=int(graph_desc["num_switches"]),
        in_ptr=_maybe_attach(graph_desc["in_ptr"], shms),
        in_src=_maybe_attach(graph_desc["in_src"], shms),
        in_link=_maybe_attach(graph_desc["in_link"], shms),
    )
    out = _maybe_attach(task["out"], shms)
    cols = np.asarray(task["cols"], dtype=np.int64)
    roots = np.asarray(task["roots"], dtype=np.int64)
    block = max(1, int(task["block_cols"]))
    evaluate = _weight_evaluator(task["weights"], shms)
    for lo in range(0, cols.size, block):
        sub = cols[lo : lo + block]
        weights = evaluate(sub)
        plid, _ = tree_core_batch(graph, roots[lo : lo + block], weights)
        out[:, sub] = plid


def _op_walk(task: dict[str, Any], shms: list[SharedMemory]) -> None:
    """Walk a destination-column range into the shared verdict buffers."""
    from repro.ib.tables import _walk_dest_block

    matrix = _maybe_attach(task["matrix"], shms)
    old = task.get("old_matrix")
    old_matrix = None if old is None else _maybe_attach(old, shms)
    graph = _ArrayGraph(
        link_dst_node=_maybe_attach(task["link_dst_node"], shms),
        link_dst_index=_maybe_attach(task["link_dst_index"], shms),
        link_enabled=_maybe_attach(task["link_enabled"], shms),
    )
    ok = _maybe_attach(task["ok"], shms)
    hops = _maybe_attach(task["hops"], shms)
    changed = (
        _maybe_attach(task["changed"], shms)
        if task.get("changed") is not None else None
    )
    dest_cols = np.asarray(task["dest_cols"])
    dest_nodes = np.asarray(task["dest_nodes"])
    lo = int(task["lo"])
    chunk = max(1, int(task["chunk"]))
    for off in range(0, dest_cols.size, chunk):
        hi = min(off + chunk, dest_cols.size)
        _walk_dest_block(
            matrix, graph,
            dest_cols[off:hi], dest_nodes[off:hi], old_matrix,
            ok[:, lo + off : lo + hi],
            hops[:, lo + off : lo + hi],
            None if changed is None else changed[:, lo + off : lo + hi],
        )


def _op_loads(
    task: dict[str, Any], shms: list[SharedMemory]
) -> np.ndarray:
    """Accumulate a column range into a private per-link load partial.

    The partial comes back over the result queue; the parent sums the
    partials — int64 addition is order-independent, so the merged loads
    equal the serial accumulation bit for bit.
    """
    from repro.routing.arrays import accumulate_column_loads

    matrix = _maybe_attach(task["matrix"], shms)
    graph = _ArrayGraph(
        num_switches=int(task["num_switches"]),
        link_dst_index=_maybe_attach(task["link_dst_index"], shms),
        link_enabled=_maybe_attach(task["link_enabled"], shms),
        attached_counts=_maybe_attach(task["attached_counts"], shms),
    )
    cols = np.asarray(task["cols"], dtype=np.int64)
    roots = np.asarray(task["roots"], dtype=np.int64)
    chunk = max(1, int(task["chunk"]))
    loads = np.zeros(int(task["num_links"]), dtype=np.int64)
    for off in range(0, cols.size, chunk):
        hi = min(off + chunk, cols.size)
        accumulate_column_loads(
            matrix, graph, cols[off:hi], roots[off:hi], loads
        )
    return loads


def _op_scan(
    task: dict[str, Any], shms: list[SharedMemory]
) -> tuple[np.ndarray, int]:
    """Incidence-scan a column range; returns (unique keys, dest count).

    Columns partition across tasks, so the union of per-task key sets
    and the sum of per-task distinct-column counts equal the serial
    full-matrix scan exactly.
    """
    from repro.routing.arrays import incidence_scan_block

    dense = _maybe_attach(task["matrix"], shms)
    cable_of_link = _maybe_attach(task["cable_of_link"], shms)
    lo, hi = int(task["lo"]), int(task["hi"])
    chunk = max(1, int(task["chunk"]))
    n_cols = int(task["n_cols"])
    num_links = int(task["num_links"])
    parts: list[np.ndarray] = []
    dests = 0
    for clo in range(lo, hi, chunk):
        chi = min(clo + chunk, hi)
        keys, ndests = incidence_scan_block(
            dense[:, clo:chi], cable_of_link, clo, n_cols, num_links
        )
        parts.append(keys)
        dests += ndests
    keys = (
        np.unique(np.concatenate(parts))
        if parts else np.empty(0, dtype=np.int64)
    )
    return keys, dests


_OPS: dict[str, Callable[[dict[str, Any], list[SharedMemory]], Any]] = {
    "tree": _op_tree,
    "walk": _op_walk,
    "loads": _op_loads,
    "scan": _op_scan,
}


def _worker_main(task_q: Any, result_q: Any) -> None:
    """Worker loop: attach, compute, detach; errors become result records."""
    while True:
        task = task_q.get()
        if task.get("op") == "stop":
            break
        shms: list[SharedMemory] = []
        try:
            payload = _OPS[task["op"]](task, shms)
            result_q.put(("ok", task.get("id"), payload))
        except BaseException:
            try:
                result_q.put(("err", task.get("id"), traceback.format_exc()))
            except Exception:
                break
        finally:
            for shm in shms:
                try:
                    shm.close()
                except BufferError:
                    pass  # a traceback frame still pins a view; GC frees it
                except Exception:
                    pass


# --------------------------------------------------------------------------
# Parent side: pool lifecycle and shared-segment bookkeeping.
# --------------------------------------------------------------------------

_seg_counter = itertools.count()


class _JobSegments:
    """Shared-memory segments of one job (created, then always unlinked)."""

    def __init__(self) -> None:
        self._shms: list[SharedMemory] = []

    def share(self, array: np.ndarray) -> dict[str, Any]:
        """Copy an array into a fresh segment; returns its descriptor."""
        array = np.ascontiguousarray(array)
        shm = SharedMemory(
            create=True,
            size=max(1, array.nbytes),
            name=f"rsw{os.getpid()}_{next(_seg_counter)}",
        )
        self._shms.append(shm)
        if array.nbytes:
            np.ndarray(array.shape, array.dtype, buffer=shm.buf)[...] = array
        return {
            "name": shm.name, "shape": array.shape, "dtype": array.dtype.str,
        }


    def alloc(
        self, shape: tuple[int, ...], dtype: Any, fill: Any = 0
    ) -> tuple[dict[str, Any], np.ndarray]:
        """A fresh output segment; returns (descriptor, parent view)."""
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        shm = SharedMemory(
            create=True,
            size=max(1, nbytes),
            name=f"rsw{os.getpid()}_{next(_seg_counter)}",
        )
        self._shms.append(shm)
        view = np.ndarray(shape, dtype=dt, buffer=shm.buf)
        view[...] = fill
        return (
            {"name": shm.name, "shape": shape, "dtype": dt.str},
            view,
        )

    def release(self) -> None:
        """Unlink every segment (close is best-effort: a live caller view
        keeps the mapping until GC, but the name goes away now)."""
        for shm in self._shms:
            try:
                shm.close()
            except BufferError:
                pass
            except Exception:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass
        self._shms.clear()


class _SweepPool:
    """N spawn workers with per-worker task queues + one result queue."""

    def __init__(self, workers: int) -> None:
        ctx = get_context("spawn")
        self.workers = workers
        self.owner_pid = os.getpid()
        self.result_q = ctx.Queue()
        self.task_qs = []
        self.procs = []
        try:
            for i in range(workers):
                task_q = ctx.Queue()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(task_q, self.result_q),
                    name=f"repro-sweep-{i}",
                    daemon=True,
                )
                proc.start()
                self.task_qs.append(task_q)
                self.procs.append(proc)
        except BaseException:
            self.shutdown()
            raise

    def alive(self) -> bool:
        return bool(self.procs) and all(p.is_alive() for p in self.procs)

    def pids(self) -> list[int]:
        return [p.pid for p in self.procs if p.pid is not None]

    def submit(self, index: int, task: dict[str, Any]) -> None:
        self.task_qs[index % self.workers].put(task)

    def collect(self, count: int) -> list[tuple[Any, Any, Any]]:
        """Wait for ``count`` ok-results; worker death or error raises."""
        got: list[tuple[Any, Any, Any]] = []
        while len(got) < count:
            try:
                result = self.result_q.get(timeout=1.0)
            except queue_mod.Empty:
                if not self.alive():
                    raise SweepPoolError(
                        "sweep worker died mid-job"
                    ) from None
                continue
            if result[0] == "err":
                raise SweepPoolError(
                    f"sweep worker task failed:\n{result[2]}"
                )
            got.append(result)
        return got

    def shutdown(self) -> None:
        for task_q in self.task_qs:
            try:
                task_q.put({"op": "stop"})
            except Exception:
                pass
        for proc in self.procs:
            proc.join(timeout=2.0)
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for q in [*self.task_qs, self.result_q]:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        self.procs = []
        self.task_qs = []


_pool: _SweepPool | None = None
_spawn_broken = False


def _acquire_pool(workers: int) -> _SweepPool | None:
    """The live pool of the requested size, (re)spawning as needed.

    Returns None — after latching — when spawn fails; the latch clears
    on the next :func:`set_sweep_workers` call.  A pool inherited
    through ``fork`` (campaign executors) is abandoned, not driven: its
    processes belong to the parent.
    """
    global _pool, _spawn_broken
    if _pool is not None and _pool.owner_pid != os.getpid():
        _pool = None
    if _pool is not None and (_pool.workers != workers or not _pool.alive()):
        _teardown_pool()
    if _pool is None:
        if _spawn_broken:
            return None
        try:
            _pool = _SweepPool(workers)
        except Exception:
            _spawn_broken = True
            return None
        _stats["pool_spawns"] += 1
    return _pool


def _teardown_pool() -> None:
    global _pool
    if _pool is not None and _pool.owner_pid == os.getpid():
        _pool.shutdown()
    _pool = None


def shutdown_sweep_pool() -> None:
    """Stop the worker pool (idempotent; respawns on next parallel job)."""
    _teardown_pool()


def sweep_pool_pids() -> list[int]:
    """Worker pids of the live pool (empty when no pool is up; tests)."""
    if _pool is None or _pool.owner_pid != os.getpid():
        return []
    return _pool.pids()


atexit.register(shutdown_sweep_pool)


def _shard_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ≤ ``parts`` contiguous non-empty runs."""
    parts = max(1, min(parts, total))
    bounds = np.linspace(0, total, parts + 1, dtype=np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(parts)
        if bounds[i + 1] > bounds[i]
    ]


# --------------------------------------------------------------------------
# Tree-sweep jobs (routing engines).
# --------------------------------------------------------------------------


@dataclass
class TreeShard:
    """One graph view and the global sweep columns routed over it."""

    graph: Any
    cols: np.ndarray


@dataclass
class TreeJob:
    """A full routing sweep, declaratively: shards x shared weight spec.

    ``weights`` is a plain dict (``kind`` of ``unit`` / ``array`` /
    ``fthx`` plus raw ndarrays) — :func:`run_tree_job` moves the arrays
    into shared memory; the in-process tests pass them through as-is.
    ``extra`` carries engine context (e.g. fatpaths' sweep state) from
    job construction to column installation untouched.
    """

    num_switches: int
    num_links: int
    roots: np.ndarray
    dest_switches: list[int]
    weights: dict[str, Any]
    shards: list[TreeShard]
    block_cols: int
    extra: Any = None


@dataclass
class SweepResult:
    """Shared plid buffer of a finished sweep; ``release()`` when installed."""

    plid: np.ndarray
    _segs: _JobSegments

    def release(self) -> None:
        self._segs.release()


def _share_weight_spec(
    spec: dict[str, Any], segs: _JobSegments
) -> dict[str, Any]:
    return {
        key: segs.share(value) if isinstance(value, np.ndarray) else value
        for key, value in spec.items()
    }


def run_tree_job(job: TreeJob) -> SweepResult | None:
    """Execute a sweep on the pool; None means "route serially instead".

    The returned ``(num_switches, K)`` int32 plid buffer holds, column
    for column, exactly what ``tree_core_batch`` would have produced in
    the serial block loop (columns are independent and the weight spec
    reproduces the engine's per-column weights bit for bit).
    """
    workers = get_sweep_workers()
    k = int(job.roots.size)
    if workers <= 1 or k < get_column_floor():
        return None
    pool = _acquire_pool(workers)
    if pool is None:
        _stats["serial_fallbacks"] += 1
        return None
    segs = _JobSegments()
    try:
        out_desc, out_view = segs.alloc(
            (job.num_switches, k), np.int32, fill=-1
        )
        weight_spec = _share_weight_spec(job.weights, segs)
        graph_descs: dict[int, dict[str, Any]] = {}
        tasks: list[dict[str, Any]] = []
        for shard in job.shards:
            gd = graph_descs.get(id(shard.graph))
            if gd is None:
                gd = {
                    "num_switches": int(shard.graph.num_switches),
                    "in_ptr": segs.share(shard.graph.in_ptr),
                    "in_src": segs.share(shard.graph.in_src),
                    "in_link": segs.share(shard.graph.in_link),
                }
                graph_descs[id(shard.graph)] = gd
            cols = np.asarray(shard.cols, dtype=np.int64)
            for lo, hi in _shard_ranges(cols.size, workers):
                part = cols[lo:hi]
                tasks.append({
                    "op": "tree",
                    "graph": gd,
                    "out": out_desc,
                    "cols": part,
                    "roots": job.roots[part],
                    "weights": weight_spec,
                    "block_cols": job.block_cols,
                })
        for i, task in enumerate(tasks):
            task["id"] = i
            pool.submit(i, task)
        pool.collect(len(tasks))
    except SweepPoolError:
        _teardown_pool()
        segs.release()
        _stats["serial_fallbacks"] += 1
        return None
    except BaseException:
        _teardown_pool()
        segs.release()
        raise
    _stats["parallel_sweeps"] += 1
    return SweepResult(plid=out_view, _segs=segs)


# --------------------------------------------------------------------------
# Walk / loads / scan jobs (path resolution and static analysis).
# --------------------------------------------------------------------------


def run_walk_job(
    matrix: np.ndarray,
    graph: Any,
    dest_cols: np.ndarray,
    dest_nodes: np.ndarray,
    old_matrix: np.ndarray | None,
    ok: np.ndarray,
    hops: np.ndarray,
    changed: np.ndarray | None,
    chunk: int,
) -> bool:
    """Parallel ``walk_dest_columns`` body; False means "walk serially".

    Shards the destination range across workers, each running the same
    ``_walk_dest_block`` chunk loop into shared verdict buffers, then
    copies the verdicts into the caller's output arrays.
    """
    workers = get_sweep_workers()
    n_dests = int(len(dest_cols))
    if workers <= 1 or n_dests < get_column_floor():
        return False
    pool = _acquire_pool(workers)
    if pool is None:
        _stats["serial_fallbacks"] += 1
        return False
    segs = _JobSegments()
    try:
        base = {
            "op": "walk",
            "matrix": segs.share(matrix),
            "old_matrix": (
                None if old_matrix is None else segs.share(old_matrix)
            ),
            "link_dst_node": segs.share(graph.link_dst_node),
            "link_dst_index": segs.share(graph.link_dst_index),
            "link_enabled": segs.share(graph.link_enabled),
            "chunk": chunk,
        }
        ok_desc, ok_view = segs.alloc(ok.shape, np.bool_, fill=False)
        hops_desc, hops_view = segs.alloc(hops.shape, np.int32, fill=0)
        base["ok"] = ok_desc
        base["hops"] = hops_desc
        changed_view = None
        if changed is not None:
            changed_desc, changed_view = segs.alloc(
                changed.shape, np.bool_, fill=False
            )
            base["changed"] = changed_desc
        dest_cols = np.asarray(dest_cols)
        dest_nodes = np.asarray(dest_nodes)
        tasks = []
        for lo, hi in _shard_ranges(n_dests, workers):
            tasks.append({
                **base,
                "dest_cols": dest_cols[lo:hi],
                "dest_nodes": dest_nodes[lo:hi],
                "lo": lo,
            })
        for i, task in enumerate(tasks):
            task["id"] = i
            pool.submit(i, task)
        pool.collect(len(tasks))
        np.copyto(ok, ok_view)
        np.copyto(hops, hops_view)
        if changed is not None and changed_view is not None:
            np.copyto(changed, changed_view)
    except SweepPoolError:
        _teardown_pool()
        segs.release()
        _stats["serial_fallbacks"] += 1
        return False
    except BaseException:
        _teardown_pool()
        segs.release()
        raise
    segs.release()
    _stats["parallel_walks"] += 1
    return True


def run_loads_job(
    matrix: np.ndarray,
    graph: Any,
    cols: np.ndarray,
    roots: np.ndarray,
    loads: np.ndarray,
    chunk: int,
) -> bool:
    """Parallel load accumulation; False means "accumulate serially".

    Workers return private per-link partials; the parent sums them into
    ``loads`` — integer sums are order-independent, so the result equals
    the serial chunk loop bit for bit.
    """
    workers = get_sweep_workers()
    cols = np.asarray(cols, dtype=np.int64)
    roots = np.asarray(roots, dtype=np.int64)
    if workers <= 1 or cols.size < get_column_floor():
        return False
    pool = _acquire_pool(workers)
    if pool is None:
        _stats["serial_fallbacks"] += 1
        return False
    segs = _JobSegments()
    try:
        base = {
            "op": "loads",
            "matrix": segs.share(matrix),
            "num_switches": int(graph.num_switches),
            "link_dst_index": segs.share(graph.link_dst_index),
            "link_enabled": segs.share(graph.link_enabled),
            "attached_counts": segs.share(graph.attached_counts),
            "num_links": int(loads.size),
            "chunk": chunk,
        }
        tasks = []
        for lo, hi in _shard_ranges(cols.size, workers):
            tasks.append({
                **base, "cols": cols[lo:hi], "roots": roots[lo:hi],
            })
        for i, task in enumerate(tasks):
            task["id"] = i
            pool.submit(i, task)
        for _, _, partial in pool.collect(len(tasks)):
            loads += partial
    except SweepPoolError:
        _teardown_pool()
        segs.release()
        _stats["serial_fallbacks"] += 1
        return False
    except BaseException:
        _teardown_pool()
        segs.release()
        raise
    segs.release()
    _stats["parallel_loads"] += 1
    return True


def run_scan_job(
    dense: np.ndarray,
    cable_of_link: np.ndarray,
    chunk: int,
) -> tuple[np.ndarray, int] | None:
    """Parallel incidence scan; None means "scan serially".

    Returns the sorted unique (cable, column) key array and the count
    of distinct non-empty columns — identical to the serial column-block
    scan because columns partition across tasks.
    """
    workers = get_sweep_workers()
    n_cols = int(dense.shape[1])
    if workers <= 1 or n_cols < get_column_floor():
        return None
    pool = _acquire_pool(workers)
    if pool is None:
        _stats["serial_fallbacks"] += 1
        return None
    segs = _JobSegments()
    try:
        base = {
            "op": "scan",
            "matrix": segs.share(dense),
            "cable_of_link": segs.share(cable_of_link),
            "chunk": chunk,
            "n_cols": n_cols,
            "num_links": int(cable_of_link.size),
        }
        tasks = []
        for lo, hi in _shard_ranges(n_cols, workers):
            tasks.append({**base, "lo": lo, "hi": hi})
        for i, task in enumerate(tasks):
            task["id"] = i
            pool.submit(i, task)
        parts = [payload for _, _, payload in pool.collect(len(tasks))]
    except SweepPoolError:
        _teardown_pool()
        segs.release()
        _stats["serial_fallbacks"] += 1
        return None
    except BaseException:
        _teardown_pool()
        segs.release()
        raise
    segs.release()
    _stats["parallel_scans"] += 1
    key_parts = [keys for keys, _ in parts]
    dests_total = sum(ndests for _, ndests in parts)
    keys = (
        np.unique(np.concatenate(key_parts))
        if key_parts else np.empty(0, dtype=np.int64)
    )
    return keys, dests_total
