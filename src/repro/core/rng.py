"""Seeded random-number helpers.

Every stochastic element of the reproduction (clustered/random placement,
fault injection, Netgauge eBB bisection sampling, run-to-run noise) draws
from a :class:`numpy.random.Generator` created here, so experiments are
deterministic given their seed and independent streams never collide.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def make_rng(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts an integer seed, ``None`` (fresh OS entropy), or an existing
    generator (returned unchanged so call sites can be seed-or-generator
    polymorphic, the usual NumPy idiom).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Used when an experiment fans out over repetitions (the paper runs
    every configuration 10 times) and each repetition needs its own
    stream so reordering repetitions does not change results.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed(seed: int | None, *tags: int | str) -> int:
    """Derive a stable integer sub-seed from ``seed`` and hashable tags.

    Tags let call sites name their stream (e.g. ``derive_seed(s, "faults",
    plane)``) so two different uses of the same master seed stay
    independent and reproducible.
    """
    material = [0 if seed is None else int(seed) & 0xFFFFFFFF]
    for tag in tags:
        if isinstance(tag, str):
            material.append(abs(hash_str(tag)) & 0xFFFFFFFF)
        else:
            material.append(int(tag) & 0xFFFFFFFF)
    return int(np.random.SeedSequence(material).generate_state(1)[0])


def hash_str(s: str) -> int:
    """Stable (process-independent) 32-bit FNV-1a hash of a string.

    Python's builtin ``hash`` is salted per process; experiment seeds must
    not depend on that.
    """
    h = 0x811C9DC5
    for byte in s.encode("utf-8"):
        h ^= byte
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h
