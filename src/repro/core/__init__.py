"""Core utilities shared by every subsystem of the reproduction.

This package holds the small, dependency-free building blocks: physical
units and calibration constants for the simulated QDR-InfiniBand fabric,
seeded random-number helpers, and the exception hierarchy.
"""

from repro.core.errors import (
    ReproError,
    TopologyError,
    RoutingError,
    DeadlockError,
    UnreachableError,
    SimulationError,
    ConfigurationError,
)
from repro.core.units import (
    KIB,
    MIB,
    GIB,
    KB,
    MB,
    GB,
    US,
    MS,
    SEC,
    QDR_LINK_BANDWIDTH,
    BASE_MPI_LATENCY,
    PER_HOP_LATENCY,
    BFO_PML_OVERHEAD,
    PARX_SIZE_THRESHOLD,
    format_bytes,
    format_time,
    format_rate,
)
from repro.core.rng import make_rng, spawn_rngs

__all__ = [
    "ReproError",
    "TopologyError",
    "RoutingError",
    "DeadlockError",
    "UnreachableError",
    "SimulationError",
    "ConfigurationError",
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "US",
    "MS",
    "SEC",
    "QDR_LINK_BANDWIDTH",
    "BASE_MPI_LATENCY",
    "PER_HOP_LATENCY",
    "BFO_PML_OVERHEAD",
    "PARX_SIZE_THRESHOLD",
    "format_bytes",
    "format_time",
    "format_rate",
    "make_rng",
    "spawn_rngs",
]
