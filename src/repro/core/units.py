"""Physical units and calibration constants for the simulated fabric.

All byte quantities in the library are plain ``int``/``float`` numbers of
bytes, all times are seconds, and all rates are bytes per second.  The
constants below give those numbers meaning:

* binary and decimal byte multiples (``KIB`` .. ``GB``),
* time multiples (``US``, ``MS``, ``SEC``),
* the QDR-InfiniBand calibration used throughout the reproduction.

Calibration
-----------
The paper's hardware is 4X QDR InfiniBand: 40 Gbit/s signalling,
32 Gbit/s data rate after 8b/10b coding, i.e. 4 GB/s = ~3.7 GiB/s raw.
Figure 1 of the paper tops out at ~3 GiB/s observable per node pair and
reports a 2.26 GiB/s average for the Fat-Tree's bisecting pattern, so we
use an effective per-direction link bandwidth of 3.4 GiB/s which, after
protocol overheads in the flow model, lands observable node-pair
bandwidth in the same band.

Latency numbers follow published QDR MPI measurements: ~1.6 us
end-to-end base latency plus ~0.1 us per switch hop.  The ``bfo`` point
to point messaging layer that PARX requires is known (paper section 5.1)
to be far less tuned than the default ``ob1``; the paper observes a
2.8x-6.9x Barrier slowdown.  We model that as an additive per-message
software overhead ``BFO_PML_OVERHEAD``.
"""

from __future__ import annotations

# --- byte multiples -------------------------------------------------------
KIB: int = 1024
MIB: int = 1024 * 1024
GIB: int = 1024 * 1024 * 1024

KB: int = 1000
MB: int = 1000 * 1000
GB: int = 1000 * 1000 * 1000

# --- time multiples (seconds) ---------------------------------------------
US: float = 1e-6
MS: float = 1e-3
SEC: float = 1.0

# --- QDR InfiniBand calibration -------------------------------------------
#: Effective per-direction bandwidth of one QDR 4X link, bytes/second.
QDR_LINK_BANDWIDTH: float = 3.4 * GIB

#: End-to-end MPI small-message latency floor (software + NIC), seconds.
BASE_MPI_LATENCY: float = 1.6 * US

#: Additional latency per traversed switch, seconds.  QDR-generation
#: switches add 100-300 ns port-to-port; the Fat-Tree's directors hide
#: two internal chip hops per traversal, which is where the HyperX's
#: hop-count advantage (2 vs 5 switch hops worst case) comes from.
PER_HOP_LATENCY: float = 0.2 * US

#: Additive software overhead per message for the bfo PML relative to ob1.
#: Calibrated so the dissemination Barrier degrades by roughly the
#: 2.8x-6.9x band the paper reports for PARX (which requires bfo).
BFO_PML_OVERHEAD: float = 5.0 * US

#: PARX small/large message threshold (paper section 3.2.4): messages of
#: 512 bytes or more take the "large" entry of Table 1.
PARX_SIZE_THRESHOLD: int = 512

#: Per-message MTU used when segmenting large transfers (QDR IB MTU=4096,
#: but the PML segments at a much larger eager/rndv boundary; we use the
#: bfo striping segment which the paper round-robins across LIDs).
PML_SEGMENT_SIZE: int = 1 * MIB


# --- platform normalisation ------------------------------------------------
def ru_maxrss_to_bytes(value: float, platform: str | None = None) -> int:
    """Normalise ``resource.getrusage(...).ru_maxrss`` to bytes.

    ``ru_maxrss`` is kibibytes on Linux but *bytes* on macOS (and most
    BSDs) — getrusage(2) vs the Linux man page.  Every RSS budget in the
    benchmarks goes through this helper so the JSON reports mean the
    same thing on both.  ``platform`` defaults to ``sys.platform``.
    """
    import sys

    plat = sys.platform if platform is None else platform
    if plat == "darwin":
        return int(value)
    return int(value) * KIB


# --- formatting helpers ----------------------------------------------------
def format_bytes(n: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``format_bytes(2048)
    == '2.0 KiB'``."""
    n = float(n)
    for suffix, scale in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if abs(n) >= scale:
            return f"{n / scale:.1f} {suffix}"
    return f"{n:.0f} B"


def format_time(t: float) -> str:
    """Render a duration in the most readable unit, e.g. ``format_time(2e-6)
    == '2.00 us'``."""
    t = float(t)
    if abs(t) >= 1.0:
        return f"{t:.2f} s"
    if abs(t) >= MS:
        return f"{t / MS:.2f} ms"
    return f"{t / US:.2f} us"


def format_rate(r: float) -> str:
    """Render a bandwidth in GiB/s or MiB/s, e.g. Figure 1's colour scale."""
    r = float(r)
    if abs(r) >= GIB:
        return f"{r / GIB:.2f} GiB/s"
    return f"{r / MIB:.1f} MiB/s"
