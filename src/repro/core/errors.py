"""Exception hierarchy for the reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
tests can assert on the specific subtype.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TopologyError(ReproError):
    """Invalid topology construction parameters or malformed network."""


class RoutingError(ReproError):
    """A routing engine could not produce valid forwarding tables."""


class UnreachableError(RoutingError):
    """A destination LID cannot be reached from some source.

    PARX's link masking can legitimately trigger this on faulty fabrics
    (paper footnote 7); the engine catches it and falls back to the
    unmasked graph for the affected destination.
    """


class DeadlockError(RoutingError):
    """The channel-dependency graph of a routing contains a cycle that
    cannot be broken within the available number of virtual lanes."""


class FabricLintError(RoutingError):
    """Static verification of a routed fabric found errors.

    Raised by :func:`repro.analysis.assert_fabric_clean` — the
    preflight gate every experiment runs before simulating.  Carries
    the full :class:`repro.analysis.LintReport` as ``report`` so
    callers can inspect rule codes and witnesses.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class SimulationError(ReproError):
    """The flow-level simulator reached an inconsistent state."""


class ConfigurationError(ReproError):
    """An experiment configuration is internally inconsistent."""
