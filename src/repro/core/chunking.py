"""Shared chunk-size policy for destination-chunked passes.

Routing sweeps, path resolution, the dense load estimator and the
what-if auditor all iterate over *destinations* and used to materialise
per-destination transient state for every destination at once — fine at
672 nodes, prohibitive at 10k+ (a single all-pairs walk buffer is
O(switches x lids x a few int64 arrays).  Every such pass is now
destination-chunked: it allocates transient state for a bounded block
of destinations, processes the block, and moves on, with results
bit-identical to the one-shot pass (each destination's computation is
independent; only the allocation granularity changes).

The block size derives from one knob — the transient-byte budget per
chunk — shared across all passes so memory behaviour is predictable:

* default 64 MiB, overridable via the ``REPRO_CHUNK_BYTES`` environment
  variable at import time;
* :func:`set_chunk_bytes` overrides it at runtime (tests force tiny
  chunks to exercise the chunk boundaries; benchmarks pin budgets).

Callers convert the byte budget into an item count with
:func:`items_per_chunk`, passing their own per-item transient cost.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Transient working-set budget of one destination chunk, in bytes.
DEFAULT_CHUNK_BYTES = 64 * 1024 * 1024

_chunk_bytes = int(
    os.environ.get("REPRO_CHUNK_BYTES", DEFAULT_CHUNK_BYTES)
)


def get_chunk_bytes() -> int:
    """The current per-chunk transient-byte budget."""
    return _chunk_bytes


def set_chunk_bytes(n: int) -> int:
    """Override the chunk budget; returns the previous value.

    Values below 1 are clamped to 1 (every chunked pass still makes
    progress one destination at a time).
    """
    global _chunk_bytes
    previous = _chunk_bytes
    _chunk_bytes = max(1, int(n))
    return previous


@contextmanager
def chunk_bytes(n: int) -> Iterator[None]:
    """``with chunk_bytes(1): ...`` — scoped chunk-budget override.

    Restores the previous budget on exit even when the body raises, so a
    failing test cannot leak a tiny chunk size into the rest of the
    suite.
    """
    previous = set_chunk_bytes(n)
    try:
        yield
    finally:
        set_chunk_bytes(previous)


def items_per_chunk(per_item_bytes: int) -> int:
    """How many destinations fit the chunk budget, never below 1."""
    return max(1, _chunk_bytes // max(1, int(per_item_bytes)))
