"""Generalised N-dimensional PARX ("generalizable to higher dimensions",
paper section 3.2.1 — implemented here as the paper's future work).

The 2-D engine assigns four LIDs per port and masks one lattice half
per LID (rules R1-R4).  The N-D generalisation uses ``2N`` LIDs: LID
``2d`` masks the links internal to the *lower* half of dimension ``d``,
LID ``2d+1`` the *upper* half.  For N = 2 and the mapping
``(lower-x, upper-x, lower-y, upper-y) = (left, right, top, bottom)``
this is exactly R1-R4 (dimension 0 is "x", and the paper's "top" is the
lower y half).

The message-size selection rule generalises Table 1 (and *derives* it —
every entry of the paper's printed tables agrees, which the test suite
checks exhaustively):

* **small** (minimal paths wanted): for every dimension where source
  and destination sit in the *same* half, choose a LID masking the
  *opposite* half of that dimension — the shared half, and with it a
  minimal path, survives;
* **large** (detour wanted): for those same dimensions choose the LID
  masking the *shared* half — the minimal paths die and traffic is
  forced through the other half;
* **fully diagonal** pairs (different halves in every dimension)
  already have maximal minimal-path diversity and no maskable detour:
  both cases fall back to the LIDs masking the source-containing
  halves, the paper's convention for the diagonal entries of Table 1.

Everything else — demand-weighted edge updates, fault fallback, the
subnet manager's VL layering — is shared with the 2-D engine.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.errors import ConfigurationError
from repro.ib.fabric import Fabric
from repro.routing.base import RoutingEngine, install_tree
from repro.routing.dijkstra import accumulate_tree_loads, tree_to_destination
from repro.topology.hyperx import hyperx_shape_of
from repro.topology.network import Network


def half_of(coord: tuple[int, ...], shape: tuple[int, ...], dim: int) -> int:
    """0 if ``coord`` lies in the lower half of ``dim``, else 1."""
    return 0 if coord[dim] < shape[dim] // 2 else 1


def nd_lid_choices(
    src_coord: tuple[int, ...],
    dst_coord: tuple[int, ...],
    shape: tuple[int, ...],
    large: bool,
) -> tuple[int, ...]:
    """Valid destination LID indices for a message (generalised Table 1).

    LID index ``2d + h`` masks half ``h`` of dimension ``d``.
    """
    shared_dims = [
        d for d in range(len(shape))
        if half_of(src_coord, shape, d) == half_of(dst_coord, shape, d)
    ]
    if shared_dims:
        out = []
        for d in shared_dims:
            shared_half = half_of(src_coord, shape, d)
            masked_half = shared_half if large else 1 - shared_half
            out.append(2 * d + masked_half)
        return tuple(out)
    # Fully diagonal: mask a source-containing half (either dimension);
    # small and large coincide (no detour exists or is needed).
    return tuple(
        2 * d + half_of(src_coord, shape, d) for d in range(len(shape))
    )


class NdParxRouting(RoutingEngine):
    """PARX for N-dimensional HyperX lattices with even dimensions.

    Needs ``2N`` LIDs per port, i.e. the subnet manager must be run with
    ``lmc >= ceil(log2(2N))``; surplus LID indices (when ``2**lmc >
    2N``) are routed minimally without masking so every LID stays
    routable (and adds no detour pressure on the virtual-lane budget).

    The paper's footnote 8 warns that "PARX may exceed a VL hardware
    limit for larger HPC systems" — that bites in higher dimensions:
    a 3-D lattice can need more than QDR's 8 lanes, so deployments of
    this engine should run the subnet manager with a larger ``max_vls``
    (modern HDR/NDR hardware has 16).
    """

    name = "parx-nd"
    provides_deadlock_freedom = True
    #: Four LIDs per port (enough for the 2-D case's 2N = 4 rules); the
    #: N-D engine keeps sequential LIDs — the quadrant encoding does not
    #: generalise past two dimensions.
    sm_defaults = {"lmc": 2}

    def __init__(
        self, demands: Mapping[int, Mapping[int, int]] | None = None
    ) -> None:
        self.demands: dict[int, dict[int, int]] = {
            src: dict(row) for src, row in (demands or {}).items()
        }
        for src, row in self.demands.items():
            for dst, w in row.items():
                if not 0 <= w <= 255:
                    raise ConfigurationError(
                        f"demand {src}->{dst} = {w} outside 0..255"
                    )

    def check_topology(self, net: Network) -> None:
        """N-D PARX needs a HyperX lattice with even dimensions."""
        shape = hyperx_shape_of(net)
        if any(s % 2 for s in shape):
            raise ConfigurationError(
                f"N-D PARX needs even dimensions, got shape {shape}"
            )

    def compute(self, fabric: Fabric) -> None:
        net = fabric.net
        self.check_topology(net)
        shape = hyperx_shape_of(net)
        n_rules = 2 * len(shape)
        if fabric.lidmap.lids_per_port < n_rules:
            raise ConfigurationError(
                f"{len(shape)}-D PARX needs {n_rules} LIDs per port; the "
                f"subnet manager assigned {fabric.lidmap.lids_per_port} "
                f"(use lmc >= {int(np.ceil(np.log2(n_rules)))})"
            )
        masks = {
            r: _half_internal_links(net, shape, r // 2, r % 2)
            for r in range(n_rules)
        }
        weights = [1.0] * len(net.links)

        demand_to: dict[int, dict[int, int]] = {}
        for src, row in self.demands.items():
            for dst, w in row.items():
                if w > 0:
                    demand_to.setdefault(dst, {})[src] = w

        terminal_set = set(net.terminals)
        optimized = sorted(d for d in self.demands if d in terminal_set)
        optimized_set = set(optimized)
        remaining = [t for t in net.terminals if t not in optimized_set]
        graph = net.switch_graph()
        base_sources = {
            graph.switches[u]: float(graph.attached_counts[u])
            for u in graph.host_switches.tolist()
        }
        for nd in optimized:
            self._route_node(
                fabric, nd, masks, weights, demand_to.get(nd, {}), base_sources
            )
        for nd in remaining:
            self._route_node(fabric, nd, masks, weights, None, base_sources)

    def _route_node(
        self,
        fabric: Fabric,
        nd: int,
        masks: dict[int, frozenset[int]],
        weights: list[float],
        demand: dict[int, int] | None,
        base_sources: dict[int, float],
    ) -> None:
        net = fabric.net
        dsw = net.attached_switch(nd)
        n_rules = len(masks)
        for i in range(fabric.lidmap.lids_per_port):
            # Surplus LIDs beyond the 2N rules route minimally unmasked.
            mask = masks[i] if i < n_rules else frozenset()
            parent, hops = tree_to_destination(net, dsw, weights, mask)
            if not _covers_all_terminals(net, parent, dsw):
                parent, hops = tree_to_destination(net, dsw, weights)
                fabric.notes.append(
                    f"parx-nd: fallback to unmasked paths for node {nd} "
                    f"lid index {i}"
                )
            install_tree(fabric, fabric.lidmap.lid(nd, i), parent)

            if demand is not None:
                sources: dict[int, float] = {}
                for src, w in demand.items():
                    if src != nd:
                        sw = net.attached_switch(src)
                        sources[sw] = sources.get(sw, 0.0) + float(w)
            else:
                sources = dict(base_sources)
                sources[dsw] = max(0.0, sources.get(dsw, 0.0) - 1.0)
            for link_id, load in accumulate_tree_loads(
                net, parent, hops, sources
            ).items():
                weights[link_id] += load


class NdParxPml:
    """Messaging layer for :class:`NdParxRouting` (the Table 1 analogue).

    Chooses among :func:`nd_lid_choices` using switch coordinates looked
    up from the fabric (the quadrant-LID trick does not scale past 2-D,
    so the N-D PML consults the topology directly).
    """

    name = "parx-nd-bfo"

    def __init__(self, threshold: int = 512, seed: int = 0) -> None:
        from repro.core.rng import make_rng
        from repro.core.units import BFO_PML_OVERHEAD

        self.threshold = threshold
        self.overhead = BFO_PML_OVERHEAD
        self._seed = seed
        self._rng = make_rng(seed)

    def lid_index(self, fabric: Fabric, src: int, dst: int, size: float) -> int:
        net = fabric.net
        shape = hyperx_shape_of(net)
        sc = tuple(net.node_meta(net.attached_switch(src))["coord"])
        dc = tuple(net.node_meta(net.attached_switch(dst))["coord"])
        choices = nd_lid_choices(sc, dc, shape, large=size >= self.threshold)
        if len(choices) == 1:
            return choices[0]
        return int(choices[self._rng.integers(len(choices))])

    def reset(self) -> None:
        from repro.core.rng import make_rng

        self._rng = make_rng(self._seed)


def _half_internal_links(
    net: Network, shape: tuple[int, ...], dim: int, half: int
) -> frozenset[int]:
    """Directed switch links with both endpoints in ``half`` of ``dim``."""
    masked: set[int] = set()
    for link in net.iter_links(enabled_only=False):
        if not (net.is_switch(link.src) and net.is_switch(link.dst)):
            continue
        c_src = net.node_meta(link.src)["coord"]
        c_dst = net.node_meta(link.dst)["coord"]
        if (
            half_of(c_src, shape, dim) == half
            and half_of(c_dst, shape, dim) == half
        ):
            masked.add(link.id)
    return frozenset(masked)


def _covers_all_terminals(net: Network, parent: dict[int, int], dsw: int) -> bool:
    graph = net.switch_graph()
    for u in graph.host_switches.tolist():
        sw = graph.switches[u]
        if sw != dsw and sw not in parent:
            return False
    return True
