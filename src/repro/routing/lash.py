"""LASH: LAyered SHortest-path routing (Skeie, Lysne & Theiss, IPDPS '02).

One of the few deadlock-free options for deterministically routed
irregular networks the paper lists alongside DFSSSP and Nue (section 6:
"only a few topology-agnostic options exist which satisfy the
deadlock-freedom criterion, such as DFSSSP or SAR, LASH, or Nue").

LASH routes every source-destination pair along a shortest path and
assigns *each pair's path* (not whole destinations, as DFSSSP does) to
a virtual layer whose accumulated channel-dependency graph stays
acyclic.  The finer granularity can pack cycles into fewer lanes at the
price of a much larger assignment problem — on InfiniBand the per-pair
lane choice is realised through the SL-to-VL tables, which is also why
LASH's layer count, unlike DFSSSP's, is not visible in the LFTs.

Implementation note: InfiniBand forwarding stays destination-based, so
all pairs toward one destination still share forwarding entries; LASH's
freedom is *which* shortest path the destination tree uses and which
lane each (source, destination) pair travels.  We keep the engine's
path calculation identical to MinHop (balanced shortest trees) and
perform the per-pair layering, recording it in
``fabric.vl_of_pair`` — the simulator's deadlock audit accepts either
granularity.
"""

from __future__ import annotations


from repro.core.errors import DeadlockError, UnreachableError
from repro.ib.cdg import addition_creates_cycle, channel_dependencies
from repro.ib.fabric import Fabric
from repro.routing.base import RoutingEngine, install_tree
from repro.routing.dijkstra import tree_to_destination


class LashRouting(RoutingEngine):
    """Shortest-path routing with per-pair virtual-lane layering."""

    name = "lash"
    provides_deadlock_freedom = False  # it layers by itself, per pair
    self_layering = True

    def __init__(self, max_vls: int = 8) -> None:
        self.max_vls = max_vls

    def compute(self, fabric: Fabric) -> None:
        net = fabric.net
        weights = [1.0] * len(net.links)
        for dlid in fabric.lidmap.terminal_lids(net):
            dst = fabric.lidmap.node_of(dlid)
            dsw = net.attached_switch(dst)
            parent, hops = tree_to_destination(net, dsw, weights)
            for sw in net.switches:
                if sw != dsw and sw not in parent and net.attached_terminals(sw):
                    raise UnreachableError(
                        f"switch {sw} cannot reach destination lid {dlid}"
                    )
            install_tree(fabric, dlid, parent)
            # Mild balancing so trees do not all collapse onto the same
            # links (LASH itself is unbalanced; this mirrors OpenSM's).
            for link_id in parent.values():
                weights[link_id] += 0.01

        self._assign_pair_layers(fabric)

    def _assign_pair_layers(self, fabric: Fabric) -> None:
        """First-fit per-pair layering over the resolved paths."""
        net = fabric.net
        layers: list[dict[int, set[int]]] = []
        vl_of_pair: dict[tuple[int, int], int] = {}
        for dlid in fabric.lidmap.terminal_lids(net):
            for src, path in fabric.iter_dest_paths(dlid):
                deps = channel_dependencies(net, [path])
                placed = False
                for vl, adj in enumerate(layers):
                    if not addition_creates_cycle(adj, deps):
                        _merge(adj, deps)
                        vl_of_pair[(src, dlid)] = vl
                        placed = True
                        break
                if placed:
                    continue
                if len(layers) >= self.max_vls:
                    raise DeadlockError(
                        f"pair ({src}, {dlid}) fits no lane within "
                        f"{self.max_vls} virtual lanes"
                    )
                adj: dict[int, set[int]] = {}
                _merge(adj, deps)
                layers.append(adj)
                vl_of_pair[(src, dlid)] = len(layers) - 1

        fabric.num_vls = max(1, len(layers))
        # Destination-granularity view for consumers that expect it: a
        # destination's lane is the highest lane any of its pairs uses
        # (safe: per-pair assignment is what guarantees acyclicity).
        by_dest: dict[int, int] = {}
        for (src, dlid), vl in vl_of_pair.items():
            by_dest[dlid] = max(by_dest.get(dlid, 0), vl)
        fabric.vl_of_dlid = by_dest
        fabric.vl_of_pair = vl_of_pair  # type: ignore[attr-defined]


def verify_pair_layering(fabric: Fabric) -> bool:
    """Exact check: per-lane CDGs over the per-pair assignment."""
    from repro.ib.cdg import dependency_cycle_exists

    net = fabric.net
    vl_of_pair = getattr(fabric, "vl_of_pair", None)
    if vl_of_pair is None:
        return False
    per_lane: dict[int, set[tuple[int, int]]] = {}
    for dlid in fabric.lidmap.terminal_lids(net):
        for src, path in fabric.iter_dest_paths(dlid):
            lane = vl_of_pair[(src, dlid)]
            per_lane.setdefault(lane, set()).update(
                channel_dependencies(net, [path])
            )
    return all(not dependency_cycle_exists(e) for e in per_lane.values())


def _merge(adj: dict[int, set[int]], deps: set[tuple[int, int]]) -> None:
    for a, b in deps:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
