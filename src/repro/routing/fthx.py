"""Fault-tolerant HyperX routing (per-dimension detours, Camarero style).

The static-routing counterpart of the fault-tolerant HyperX schemes of
Camarero et al. (arXiv:2404.04315): when dimension cables die, traffic
toward an affected destination detours *within the broken dimension* —
one lateral hop to a healthy row neighbour, then the aligning hop — in
preference to wandering through already-aligned dimensions.  On an
InfiniBand fabric with destination-based forwarding that policy becomes
a per-destination shortest-path tree over the surviving links with a
dimension-aware edge metric:

* hops always dominate (the lexicographic metric of
  :func:`~repro.routing.dijkstra.tree_to_destination`), so routes stay
  minimal wherever minimal paths survive;
* among equal-hop alternatives, *aligning* moves (the hop lands on the
  destination's coordinate in that dimension) are cheapest, lateral
  in-dimension moves cost a little more, and moves that leave an
  already-aligned dimension cost the most — exactly the per-dimension
  detour preference;
* each destination tree corrects dimensions in one fixed order (a
  destination-specific DOR), with the order rotated per destination
  LID — mixing the order classes spreads load while keeping each
  class's channel-dependency graph acyclic;
* a deterministic per-(link, destination-LID) jitter spreads the
  remaining ties across destinations, approximating the load balance a
  global SSSP sweep buys with its serial +1 feedback — but without any
  cross-destination state.

That last point is the engine's contract: every tree is a pure function
of (topology, destination), so a per-destination recompute after a
fabric event reproduces a full sweep bit for bit
(``supports_incremental_resweep``) — unlike DFSSSP, whose feedback
forces a full re-sweep on every cable event.

On non-HyperX topologies the dimension classes vanish and the engine
degrades to jitter-balanced shortest paths (still valid, still
incremental), so it can serve as a topology-agnostic baseline too.
"""

from __future__ import annotations

from typing import Collection, Sequence

import numpy as np

from repro.core.errors import TopologyError, UnreachableError
from repro.ib.fabric import Fabric
from repro.routing.arrays import tree_core_batch
from repro.routing.base import (
    RoutingEngine,
    batched_sweep_enabled,
    column_tree,
    destination_block_width,
    destination_blocks,
    install_tree,
    install_tree_columns,
    parallel_route_columns,
)
from repro.routing.dijkstra import tree_to_destination
from repro.topology.hyperx import hyperx_shape_of
from repro.topology.network import Network

#: Extra weight of a lateral in-dimension move (the first hop of a
#: per-dimension detour) over the aligning move it postpones.
LATERAL_EXTRA = 0.25
#: Extra weight of a move that leaves an already-aligned dimension —
#: the detour shape the engine avoids hardest.
AWAY_EXTRA = 0.75
#: Base coefficient of the dimension-order preference.  Each hop is
#: surcharged per still-misaligned *other* dimension, with per-dimension
#: coefficients permuted by the destination LID — so every destination
#: tree corrects dimensions in one fixed order (DOR-like, which keeps
#: the channel-dependency graph lane-friendly), and the order rotates
#: across destinations for load balance.
ALIGN = 0.5
#: Scale of the deterministic per-(link, destination-LID) tie-break
#: jitter.  Kept well below ``ALIGN`` so jitter spreads residual ties
#: without flipping the dimension-order preference.
#:
#: Note the metric deliberately contains no fault-load term: weights
#: must not depend on which cables are currently dead, or the trees of
#: destinations *away* from a failure would shift when it happens and
#: the incremental re-sweep (which recomputes only destinations whose
#: tables referenced the dead cable) could no longer reproduce a full
#: sweep bit for bit.  Dead links influence routing solely by being
#: absent from the graph.
JITTER = 0.05

_M64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def link_dest_jitter(link_ids: np.ndarray, dlid: int) -> np.ndarray:
    """Deterministic jitter in [0, 1) per (link id, destination LID).

    A splitmix64-style mix of the two ids — stable across processes and
    re-sweeps (no :mod:`random` state), which the incremental-resweep
    bit-equality contract depends on.
    """
    salt = np.uint64((dlid * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF)
    h = link_ids.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    h = (h + salt) & _M64
    h ^= h >> np.uint64(31)
    h = (h * np.uint64(0x94D049BB133111EB)) & _M64
    h ^= h >> np.uint64(29)
    return (h & np.uint64(0xFFFFF)).astype(np.float64) / float(1 << 20)


def link_dest_jitter_block(
    link_ids: np.ndarray, dlids: Sequence[int]
) -> np.ndarray:
    """:func:`link_dest_jitter` for K destinations at once, ``(E, K)``.

    The same splitmix mix with the per-LID salt broadcast across
    columns — every cell is the scalar function's exact value (uint64
    arithmetic wraps identically whether batched or not).
    """
    salts = np.asarray(dlids, dtype=np.uint64) * np.uint64(
        0xBF58476D1CE4E5B9
    )
    h = link_ids.astype(np.uint64)[:, None] * np.uint64(0x9E3779B97F4A7C15)
    h = (h + salts[None, :]) & _M64
    h ^= h >> np.uint64(31)
    h = (h * np.uint64(0x94D049BB133111EB)) & _M64
    h ^= h >> np.uint64(29)
    return (h & np.uint64(0xFFFFF)).astype(np.float64) / float(1 << 20)


def dimension_rotation(dlid: int, ndim: int) -> int:
    """The destination's dimension-correction order class (0..ndim-1).

    A splitmix-style hash of the LID, shared by the weight metric and
    the VL layering key so both see the same class.
    """
    return ((dlid * 0x9E3779B97F4A7C15) >> 32) % ndim


def weights_block_core(
    base: np.ndarray,
    sw_ids: np.ndarray,
    sw_dim: np.ndarray,
    sw_src_val: np.ndarray,
    sw_dst_val: np.ndarray,
    sw_src_coords: np.ndarray,
    ndim: int,
    cds: np.ndarray,
    dlids: np.ndarray,
    rotations: np.ndarray | None,
) -> np.ndarray:
    """:meth:`LinkProfile.weights_block` over raw arrays.

    The profile's method delegates here, and pool workers call this
    directly on shared-memory views of the same arrays — one function,
    one IEEE operation sequence, so parent and workers produce bit-equal
    weight columns.  ``ndim == 0`` means no HyperX shape (``cds`` is
    ``(K, 0)`` and the dimension surcharges vanish); ``dlids`` entries
    pass through :func:`dimension_rotation` as exact Python ints (the
    hash relies on arbitrary-precision multiply, which ``np.int64``
    would wrap).
    """
    k = len(dlids)
    w = np.repeat(base[:, None], k, axis=1)
    ids = sw_ids
    if ids.size == 0 or k == 0:
        return w
    if ndim:
        dest_vals = cds[:, sw_dim].T  # (E, K)
        w[ids] += np.where(
            sw_dst_val[:, None] == dest_vals,
            0.0,
            np.where(
                sw_src_val[:, None] == dest_vals,
                AWAY_EXTRA,
                LATERAL_EXTRA,
            ),
        )
        # Dimension-order preference: surcharge every hop per
        # still-misaligned other dimension, coefficients rotated by
        # the destination LID.  The cheapest equal-hop path corrects
        # the expensive dimensions first — a per-destination DOR.
        arange_e = np.arange(ids.size)
        for j in range(k):
            rot = (
                dimension_rotation(int(dlids[j]), ndim)
                if rotations is None
                else int(rotations[j]) % ndim
            )
            coeff = ALIGN * (1.0 + (np.arange(ndim) + rot) % ndim)
            misaligned = sw_src_coords != cds[j][np.newaxis, :]
            misaligned[arange_e, sw_dim] = False
            w[ids, j] += misaligned @ coeff
    w[ids] += JITTER * link_dest_jitter_block(ids, dlids)
    return w


class LinkProfile:
    """Per-sweep, topology-derived link data (no per-destination state).

    Computed once per (re-)sweep from the *current* topology, so a full
    sweep and an incremental recompute on the same fabric see identical
    weights.
    """

    def __init__(self, net: Network) -> None:
        try:
            self.shape: tuple[int, ...] | None = hyperx_shape_of(net)
        except TopologyError:
            self.shape = None

        n = len(net.links)
        base = np.ones(n, dtype=np.float64)
        sw_ids: list[int] = []
        sw_dim: list[int] = []
        sw_src_val: list[int] = []
        sw_dst_val: list[int] = []

        if self.shape is not None:
            sw_src_coords: list[tuple[int, ...]] = []
            for link in net.iter_links():
                if not (net.is_switch(link.src) and net.is_switch(link.dst)):
                    continue
                dim = self._link_dim(net, link)
                cs = net.node_meta(link.src)["coord"]
                sw_ids.append(link.id)
                sw_dim.append(dim)
                sw_src_val.append(cs[dim])
                sw_dst_val.append(net.node_meta(link.dst)["coord"][dim])
                sw_src_coords.append(tuple(cs))
            self.sw_src_coords = np.asarray(sw_src_coords, dtype=np.int64)
        else:
            for link in net.iter_links():
                if net.is_switch(link.src) and net.is_switch(link.dst):
                    sw_ids.append(link.id)
            self.sw_src_coords = np.zeros((len(sw_ids), 0), dtype=np.int64)

        self.base = base
        self.sw_ids = np.asarray(sw_ids, dtype=np.int64)
        self.sw_dim = np.asarray(sw_dim, dtype=np.int64)
        self.sw_src_val = np.asarray(sw_src_val, dtype=np.int64)
        self.sw_dst_val = np.asarray(sw_dst_val, dtype=np.int64)
        self._coord_of: dict[int, tuple[int, ...]] = {}
        if self.shape is not None:
            for sw in net.switches:
                self._coord_of[sw] = tuple(net.node_meta(sw)["coord"])

    @staticmethod
    def _link_dim(net: Network, link) -> int:
        cs = net.node_meta(link.src)["coord"]
        cd = net.node_meta(link.dst)["coord"]
        for i, (a, b) in enumerate(zip(cs, cd)):
            if a != b:
                return i
        raise TopologyError(
            f"switch link {link.id} connects co-located switches"
        )

    @property
    def ndim(self) -> int:
        """Lattice dimensions (0 on non-HyperX topologies)."""
        return 0 if self.shape is None else len(self.shape)

    def dest_coords(self, dest_switches: Sequence[int]) -> np.ndarray:
        """Destination lattice coordinates, ``(K, ndim)`` int64.

        ``(K, 0)`` on non-HyperX topologies — together with the profile
        arrays this is everything :func:`weights_block_core` needs, so a
        pool worker can evaluate the metric from shared memory alone.
        """
        if self.shape is None:
            return np.zeros((len(dest_switches), 0), dtype=np.int64)
        return np.asarray(
            [self._coord_of[sw] for sw in dest_switches], dtype=np.int64
        )

    def weights_for(
        self, dest_switch: int, dlid: int, rotation: int | None = None
    ) -> list[float]:
        """The per-destination edge metric, as a dense link-id list.

        ``rotation`` overrides the dimension-order class (FatPaths uses
        one class per layer); ``None`` derives it from the LID.

        One column of :meth:`weights_block` — the sequential sweep and
        the batched sweep read the same metric by construction.
        """
        rotations = None if rotation is None else [rotation]
        return self.weights_block(
            [dest_switch], [dlid], rotations
        )[:, 0].tolist()

    def weights_block(
        self,
        dest_switches: Sequence[int],
        dlids: Sequence[int],
        rotations: Sequence[int] | None = None,
    ) -> np.ndarray:
        """The edge metric for K destinations at once, ``(num_links, K)``.

        Column ``j`` is bit-equal to the historical single-destination
        metric for ``(dest_switches[j], dlids[j])``: the align/detour
        surcharge and the jitter are elementwise (batching cannot change
        them), and the dimension-order surcharge keeps the exact
        ``misaligned @ coeff`` reduction per column so its float sums
        see the same operand order.
        """
        return weights_block_core(
            self.base,
            self.sw_ids,
            self.sw_dim,
            self.sw_src_val,
            self.sw_dst_val,
            self.sw_src_coords,
            self.ndim,
            self.dest_coords(dest_switches),
            np.asarray(dlids, dtype=np.int64),
            None
            if rotations is None
            else np.asarray(rotations, dtype=np.int64),
        )


def _fthx_weight_spec(
    profile: LinkProfile,
    dest_switches: Sequence[int],
    dlids: Sequence[int],
    rotations: Sequence[int] | None = None,
) -> dict:
    """A pool-shareable weight spec evaluating this profile's metric.

    Workers feed the arrays straight into :func:`weights_block_core`
    (see ``_weight_evaluator`` in :mod:`repro.core.parallel`), so every
    column they produce is bit-equal to
    ``profile.weights_block(dest_switches, dlids, rotations)``.
    """
    spec = {
        "kind": "fthx",
        "ndim": profile.ndim,
        "base": profile.base,
        "sw_ids": profile.sw_ids,
        "sw_dim": profile.sw_dim,
        "sw_src_val": profile.sw_src_val,
        "sw_dst_val": profile.sw_dst_val,
        "sw_src_coords": profile.sw_src_coords,
        "cds": profile.dest_coords(dest_switches),
        "dlids": np.asarray(dlids, dtype=np.int64),
    }
    if rotations is not None:
        spec["rotations"] = np.asarray(rotations, dtype=np.int64)
    return spec


class FtHyperxRouting(RoutingEngine):
    """Fault-tolerant dimension-aware shortest paths for HyperX."""

    name = "fthx"
    provides_deadlock_freedom = True  # via the SM's VL layering
    # Trees are pure functions of (topology, destination LID): the
    # dimension classes, fault pressure, and jitter all derive from the
    # current topology and the LID alone, never from other destinations.
    supports_incremental_resweep = True
    # The same purity lets whole destination blocks route in one numpy
    # pass, with per-column weight matrices from ``weights_block``.
    supports_batched_sweep = True
    # And the weights are *declarative* — profile arrays plus (cds,
    # dlid) per column — so pool workers can evaluate them from shared
    # memory and route destination shards with bit-identical tables.
    parallel_sweep_safe = True

    def vl_layering_key(self, fabric: Fabric, dlid: int) -> tuple:
        """Group destinations by dimension-order class for VL layering.

        Each class's trees share one dimension-correction order and are
        mutually deadlock-free (DOR); processing classes contiguously
        packs them into about one lane per class instead of scattering
        conflicting orders across every lane.
        """
        net = fabric.net
        try:
            sw = net.attached_switch(fabric.lidmap.node_of(dlid))
            coord = net.node_meta(sw).get("coord")
        except (KeyError, TypeError):
            coord = None
        if not coord:
            return (0, dlid)
        return (dimension_rotation(dlid, len(coord)), dlid)

    def compute(self, fabric: Fabric) -> None:
        net = fabric.net
        dlids = fabric.lidmap.terminal_lids(net)
        if batched_sweep_enabled():
            if parallel_route_columns(self, fabric, dlids):
                return
            profile = LinkProfile(net)
            for block in destination_blocks(fabric, dlids):
                self._route_block(fabric, block, profile)
            return
        profile = LinkProfile(net)
        for dlid in dlids:
            self._route_dlid(fabric, dlid, profile)

    def recompute_destinations(
        self, fabric: Fabric, dlids: Collection[int]
    ) -> None:
        """Rebuild only the given destination columns.

        The link profile is rebuilt from the current (post-event)
        topology; unaffected columns already match what a full sweep on
        that topology would produce, because nothing in the metric
        couples destinations.
        """
        net = fabric.net
        ordered = sorted(dlids)
        if batched_sweep_enabled():

            def reset_all() -> None:
                # Reset only once the pool has the full result in hand,
                # so a pool failure leaves the old tables intact for the
                # serial fallback below (whose per-block resets then run
                # on untouched columns, exactly as without a pool).
                for dlid in ordered:
                    self._reset_column(fabric, dlid)

            if parallel_route_columns(
                self, fabric, ordered, before_install=reset_all
            ):
                return
            profile = LinkProfile(net)
            for block in destination_blocks(fabric, ordered):
                for dlid in block:
                    self._reset_column(fabric, dlid)
                self._route_block(fabric, block, profile)
            return
        profile = LinkProfile(net)
        for dlid in ordered:
            self._reset_column(fabric, dlid)
            self._route_dlid(fabric, dlid, profile)

    @staticmethod
    def _reset_column(fabric: Fabric, dlid: int) -> None:
        net = fabric.net
        fabric.tables.clear_column(dlid)
        t = fabric.lidmap.node_of(dlid)
        down = net.terminal_uplink(t).reverse_id
        fabric.set_route(net.attached_switch(t), dlid, down)

    def _sweep_job(self, fabric: Fabric, dlids: list[int]):
        from repro.core.parallel import TreeJob, TreeShard

        net = fabric.net
        graph = net.switch_graph()
        profile = LinkProfile(net)
        dsws = [
            net.attached_switch(fabric.lidmap.node_of(d)) for d in dlids
        ]
        roots = graph.index[np.asarray(dsws, dtype=np.int64)]
        return TreeJob(
            num_switches=graph.num_switches,
            num_links=len(net.links),
            roots=roots,
            dest_switches=dsws,
            weights=_fthx_weight_spec(profile, dsws, dlids),
            shards=[
                TreeShard(
                    graph=graph,
                    cols=np.arange(len(dlids), dtype=np.int64),
                )
            ],
            block_cols=destination_block_width(fabric),
        )

    def _install_sweep(
        self,
        fabric: Fabric,
        dlids: list[int],
        job,
        plid: np.ndarray,
    ) -> None:
        graph = fabric.net.switch_graph()

        def on_unreachable(j: int, dlid: int, dsw: int) -> None:
            parent, _hops = column_tree(graph, plid[:, j])
            self._check_reach(fabric, parent, dsw, dlid)

        install_tree_columns(
            fabric, dlids, job.dest_switches, plid,
            on_unreachable=on_unreachable,
        )

    def _route_block(
        self, fabric: Fabric, block: list[int], profile: LinkProfile
    ) -> None:
        net = fabric.net
        graph = net.switch_graph()
        dsws = [
            net.attached_switch(fabric.lidmap.node_of(d)) for d in block
        ]
        roots = graph.index[np.asarray(dsws, dtype=np.int64)]
        weights = profile.weights_block(dsws, block)
        plid, _ = tree_core_batch(graph, roots, weights)

        def on_unreachable(j: int, dlid: int, dsw: int) -> None:
            parent, _hops = column_tree(graph, plid[:, j])
            self._check_reach(fabric, parent, dsw, dlid)

        install_tree_columns(
            fabric, block, dsws, plid, on_unreachable=on_unreachable
        )

    def _route_dlid(
        self, fabric: Fabric, dlid: int, profile: LinkProfile
    ) -> None:
        net = fabric.net
        dst = fabric.lidmap.node_of(dlid)
        dsw = net.attached_switch(dst)
        parent, hops = tree_to_destination(
            net, dsw, profile.weights_for(dsw, dlid)
        )
        self._check_reach(fabric, parent, dsw, dlid)
        install_tree(fabric, dlid, parent)

    @staticmethod
    def _check_reach(
        fabric: Fabric, parent: dict, dsw: int, dlid: int
    ) -> None:
        net = fabric.net
        graph = net.switch_graph()
        for u in graph.host_switches.tolist():
            sw = graph.switches[u]
            if sw != dsw and sw not in parent:
                raise UnreachableError(
                    f"switch {sw} cannot reach destination lid {dlid}"
                )
