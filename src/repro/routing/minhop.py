"""MinHop routing: plain shortest paths, no balancing.

The simplest deterministic engine — routes every destination along a
minimal-hop tree with fixed unit weights, so equal-hop choices fall to
the deterministic tie-break rather than to load.  It exists as the
unbalanced baseline the SSSP family improves on, and (because it runs
fast) as the default engine in unit tests.

Like OpenSM's ``minhop``, it does not attempt deadlock freedom by
itself; the subnet manager's virtual-lane layering supplies it.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import UnreachableError
from repro.ib.fabric import Fabric
from repro.routing.base import RoutingEngine, install_tree
from repro.routing.dijkstra import tree_to_destination


class MinHopRouting(RoutingEngine):
    """Unit-weight shortest-path destination trees."""

    name = "minhop"
    provides_deadlock_freedom = True  # via the SM's VL layering

    def compute(self, fabric: Fabric) -> None:
        net = fabric.net
        weights = np.ones(len(net.links))
        for dlid in fabric.lidmap.terminal_lids(net):
            dst = fabric.lidmap.node_of(dlid)
            dsw = net.attached_switch(dst)
            parent, hops = tree_to_destination(net, dsw, weights)
            self._check_reach(fabric, parent, hops, dsw, dlid)
            install_tree(fabric, dlid, parent)

    @staticmethod
    def _check_reach(
        fabric: Fabric, parent: dict, hops: dict, dsw: int, dlid: int
    ) -> None:
        for sw in fabric.net.switches:
            if sw != dsw and sw not in parent and fabric.net.attached_terminals(sw):
                raise UnreachableError(
                    f"switch {sw} cannot reach destination lid {dlid}"
                )
