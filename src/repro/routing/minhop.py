"""MinHop routing: plain shortest paths, no balancing.

The simplest deterministic engine — routes every destination along a
minimal-hop tree with fixed unit weights, so equal-hop choices fall to
the deterministic tie-break rather than to load.  It exists as the
unbalanced baseline the SSSP family improves on, and (because it runs
fast) as the default engine in unit tests.

Like OpenSM's ``minhop``, it does not attempt deadlock freedom by
itself; the subnet manager's virtual-lane layering supplies it.
"""

from __future__ import annotations

from typing import Collection


from repro.core.errors import UnreachableError
from repro.ib.fabric import Fabric
from repro.routing.base import RoutingEngine, install_tree
from repro.routing.dijkstra import tree_to_destination


class MinHopRouting(RoutingEngine):
    """Unit-weight shortest-path destination trees."""

    name = "minhop"
    provides_deadlock_freedom = True  # via the SM's VL layering
    # Unit weights and no inter-destination feedback: each tree depends
    # only on the topology, so a per-destination recompute reproduces a
    # full sweep bit for bit.
    supports_incremental_resweep = True

    def compute(self, fabric: Fabric) -> None:
        net = fabric.net
        weights = [1.0] * len(net.links)
        for dlid in fabric.lidmap.terminal_lids(net):
            self._route_dlid(fabric, dlid, weights)

    def recompute_destinations(
        self, fabric: Fabric, dlids: Collection[int]
    ) -> None:
        """Rebuild only the given destination columns.

        For each affected LID the old column (including the ejection
        hop) is dropped and rebuilt exactly as :meth:`compute` would on
        the current topology — the trees of unaffected LIDs are
        untouched and, with unit weights, already equal what a full
        sweep would produce.
        """
        net = fabric.net
        weights = [1.0] * len(net.links)
        for dlid in sorted(dlids):
            fabric.tables.clear_column(dlid)
            t = fabric.lidmap.node_of(dlid)
            down = net.terminal_uplink(t).reverse_id
            fabric.set_route(net.attached_switch(t), dlid, down)
            self._route_dlid(fabric, dlid, weights)

    def _route_dlid(
        self, fabric: Fabric, dlid: int, weights: list[float]
    ) -> None:
        net = fabric.net
        dst = fabric.lidmap.node_of(dlid)
        dsw = net.attached_switch(dst)
        parent, hops = tree_to_destination(net, dsw, weights)
        self._check_reach(fabric, parent, hops, dsw, dlid)
        install_tree(fabric, dlid, parent)

    @staticmethod
    def _check_reach(
        fabric: Fabric, parent: dict, hops: dict, dsw: int, dlid: int
    ) -> None:
        net = fabric.net
        graph = net.switch_graph()
        for u in graph.host_switches.tolist():
            sw = graph.switches[u]
            if sw != dsw and sw not in parent:
                raise UnreachableError(
                    f"switch {sw} cannot reach destination lid {dlid}"
                )
