"""MinHop routing: plain shortest paths, no balancing.

The simplest deterministic engine — routes every destination along a
minimal-hop tree with fixed unit weights, so equal-hop choices fall to
the deterministic tie-break rather than to load.  It exists as the
unbalanced baseline the SSSP family improves on, and (because it runs
fast) as the default engine in unit tests.

Like OpenSM's ``minhop``, it does not attempt deadlock freedom by
itself; the subnet manager's virtual-lane layering supplies it.
"""

from __future__ import annotations

from typing import Collection

import numpy as np

from repro.core.errors import UnreachableError
from repro.ib.fabric import Fabric
from repro.routing.arrays import tree_core_batch
from repro.routing.base import (
    RoutingEngine,
    batched_sweep_enabled,
    column_tree,
    destination_block_width,
    destination_blocks,
    install_tree,
    install_tree_columns,
    parallel_route_columns,
)
from repro.routing.dijkstra import tree_to_destination


class MinHopRouting(RoutingEngine):
    """Unit-weight shortest-path destination trees."""

    name = "minhop"
    provides_deadlock_freedom = True  # via the SM's VL layering
    # Unit weights and no inter-destination feedback: each tree depends
    # only on the topology, so a per-destination recompute reproduces a
    # full sweep bit for bit.
    supports_incremental_resweep = True
    # The same independence lets whole destination blocks route in one
    # numpy pass; unit weights are shared across every column.
    supports_batched_sweep = True
    # Unit weights are trivially declarative, so destination shards can
    # route on the worker pool with bit-identical tables.
    parallel_sweep_safe = True

    def compute(self, fabric: Fabric) -> None:
        net = fabric.net
        dlids = fabric.lidmap.terminal_lids(net)
        if batched_sweep_enabled():
            if parallel_route_columns(self, fabric, dlids):
                return
            for block in destination_blocks(fabric, dlids):
                self._route_block(fabric, block)
            return
        weights = [1.0] * len(net.links)
        for dlid in dlids:
            self._route_dlid(fabric, dlid, weights)

    def recompute_destinations(
        self, fabric: Fabric, dlids: Collection[int]
    ) -> None:
        """Rebuild only the given destination columns.

        For each affected LID the old column (including the ejection
        hop) is dropped and rebuilt exactly as :meth:`compute` would on
        the current topology — the trees of unaffected LIDs are
        untouched and, with unit weights, already equal what a full
        sweep would produce.
        """
        net = fabric.net
        ordered = sorted(dlids)
        if batched_sweep_enabled():

            def reset_all() -> None:
                # Reset only once the pool has the full result in hand,
                # so a pool failure leaves the old tables intact for the
                # serial fallback below.
                for dlid in ordered:
                    self._reset_column(fabric, dlid)

            if parallel_route_columns(
                self, fabric, ordered, before_install=reset_all
            ):
                return
            for block in destination_blocks(fabric, ordered):
                for dlid in block:
                    self._reset_column(fabric, dlid)
                self._route_block(fabric, block)
            return
        weights = [1.0] * len(net.links)
        for dlid in ordered:
            self._reset_column(fabric, dlid)
            self._route_dlid(fabric, dlid, weights)

    @staticmethod
    def _reset_column(fabric: Fabric, dlid: int) -> None:
        net = fabric.net
        fabric.tables.clear_column(dlid)
        t = fabric.lidmap.node_of(dlid)
        down = net.terminal_uplink(t).reverse_id
        fabric.set_route(net.attached_switch(t), dlid, down)

    def _sweep_job(self, fabric: Fabric, dlids: list[int]):
        from repro.core.parallel import TreeJob, TreeShard

        net = fabric.net
        graph = net.switch_graph()
        dsws = [
            net.attached_switch(fabric.lidmap.node_of(d)) for d in dlids
        ]
        roots = graph.index[np.asarray(dsws, dtype=np.int64)]
        return TreeJob(
            num_switches=graph.num_switches,
            num_links=len(net.links),
            roots=roots,
            dest_switches=dsws,
            weights={"kind": "unit", "num_links": len(net.links)},
            shards=[
                TreeShard(
                    graph=graph,
                    cols=np.arange(len(dlids), dtype=np.int64),
                )
            ],
            block_cols=destination_block_width(fabric),
        )

    def _install_sweep(
        self,
        fabric: Fabric,
        dlids: list[int],
        job,
        plid: np.ndarray,
    ) -> None:
        net = fabric.net
        graph = net.switch_graph()
        ones = np.ones(len(net.links), dtype=np.float64)

        def on_unreachable(j: int, dlid: int, dsw: int) -> None:
            # The shared buffer carries no hop counts (a second (V, K)
            # buffer for a rare failure path); recompute the lone
            # column serially to hand ``_check_reach`` the exact dict
            # view the sequential loop produces.
            sub, hops = tree_core_batch(graph, job.roots[j : j + 1], ones)
            parent, hdict = column_tree(graph, sub[:, 0], hops[:, 0])
            self._check_reach(fabric, parent, hdict, dsw, dlid)

        install_tree_columns(
            fabric, dlids, job.dest_switches, plid,
            on_unreachable=on_unreachable,
        )

    def _route_block(self, fabric: Fabric, block: list[int]) -> None:
        net = fabric.net
        graph = net.switch_graph()
        dsws = [
            net.attached_switch(fabric.lidmap.node_of(d)) for d in block
        ]
        roots = graph.index[np.asarray(dsws, dtype=np.int64)]
        weights = np.ones(len(net.links), dtype=np.float64)
        plid, hops = tree_core_batch(graph, roots, weights)

        def on_unreachable(j: int, dlid: int, dsw: int) -> None:
            # Route the failure through the overridable hook with the
            # dict view the sequential loop would have produced.
            parent, hdict = column_tree(graph, plid[:, j], hops[:, j])
            self._check_reach(fabric, parent, hdict, dsw, dlid)

        install_tree_columns(
            fabric, block, dsws, plid, on_unreachable=on_unreachable
        )

    def _route_dlid(
        self, fabric: Fabric, dlid: int, weights: list[float]
    ) -> None:
        net = fabric.net
        dst = fabric.lidmap.node_of(dlid)
        dsw = net.attached_switch(dst)
        parent, hops = tree_to_destination(net, dsw, weights)
        self._check_reach(fabric, parent, hops, dsw, dlid)
        install_tree(fabric, dlid, parent)

    @staticmethod
    def _check_reach(
        fabric: Fabric, parent: dict, hops: dict, dsw: int, dlid: int
    ) -> None:
        net = fabric.net
        graph = net.switch_graph()
        for u in graph.host_switches.tolist():
            sw = graph.switches[u]
            if sw != dsw and sw not in parent:
                raise UnreachableError(
                    f"switch {sw} cannot reach destination lid {dlid}"
                )
