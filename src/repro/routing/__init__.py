"""Routing engines producing InfiniBand linear forwarding tables.

All engines implement :class:`~repro.routing.base.RoutingEngine` and are
driven through :class:`~repro.ib.subnet_manager.OpenSM`:

* :class:`~repro.routing.minhop.MinHopRouting` — plain shortest paths,
* :class:`~repro.routing.ftree.FtreeRouting` — d-mod-k style up/down for
  Fat-Trees (OpenSM's ``ftree``),
* :class:`~repro.routing.updown.UpDownRouting` — topology-agnostic
  deadlock-free Up*/Down*,
* :class:`~repro.routing.sssp.SsspRouting` — Hoefler et al.'s globally
  balanced SSSP (deadlock-prone on cyclic topologies),
* :class:`~repro.routing.dfsssp.DfssspRouting` — SSSP + virtual-lane
  deadlock freedom (Domke et al.),
* :class:`~repro.routing.parx.ParxRouting` — the paper's contribution:
  pattern-aware, quadrant-masked minimal + non-minimal multipath routing
  for 2-D HyperX,
* :class:`~repro.routing.fthx.FtHyperxRouting` — fault-tolerant
  dimension-aware HyperX routing (Camarero-style per-dimension detours),
* :class:`~repro.routing.fatpaths.FatPathsRouting` — FatPaths-style
  layered near-edge-disjoint multipath over the LMC LIDs,
* :class:`~repro.routing.dal.DalSelector` — adaptive candidate paths
  (DAL/UGAL stand-in) consumed by the simulator, the paper's "what
  future hardware would do" baseline.

Every engine is registered in :mod:`repro.routing.registry` — the single
source of truth the CLI, campaign combinations, and re-sweeps all
construct engines through (:func:`create_engine`).
"""

from repro.routing.base import RoutingEngine
from repro.routing.dijkstra import tree_to_destination
from repro.routing.minhop import MinHopRouting
from repro.routing.ftree import FtreeRouting
from repro.routing.updown import UpDownRouting
from repro.routing.sssp import SsspRouting
from repro.routing.dfsssp import DfssspRouting
from repro.routing.parx import (
    ParxRouting,
    SMALL_LID_CHOICE,
    LARGE_LID_CHOICE,
    HALF_REMOVED_BY_LID,
)
from repro.routing.parx_nd import (
    NdParxRouting,
    NdParxPml,
    nd_lid_choices,
)
from repro.routing.lash import LashRouting, verify_pair_layering
from repro.routing.nue import NueRouting
from repro.routing.valiant import ValiantRouting
from repro.routing.fthx import FtHyperxRouting
from repro.routing.fatpaths import FatPathsRouting
from repro.routing.dal import DalSelector
from repro.routing.validate import RoutingAudit, audit_fabric
from repro.routing.registry import (
    EngineSpec,
    catalogue_markdown,
    create_engine,
    engine_catalogue,
    engine_names,
    engine_spec,
    register_engine,
    sm_kwargs_for,
)

register_engine(
    "minhop",
    MinHopRouting,
    description="Unit-weight shortest paths; the unbalanced baseline.",
)
register_engine(
    "ftree",
    FtreeRouting,
    description="OpenSM-style up/down for fat-trees.",
    topologies=("fattree",),
)
register_engine(
    "updown",
    UpDownRouting,
    description="Topology-agnostic deadlock-free Up*/Down*.",
)
register_engine(
    "sssp",
    SsspRouting,
    description="Globally balanced SSSP (no deadlock protection).",
)
register_engine(
    "dfsssp",
    DfssspRouting,
    description="Balanced SSSP with virtual-lane deadlock freedom.",
)
register_engine(
    "parx",
    ParxRouting,
    needs_demands=True,
    description="The paper's pattern-aware 2-D HyperX multipath engine.",
    topologies=("hyperx",),
)
register_engine(
    "parx-nd",
    NdParxRouting,
    needs_demands=True,
    description="PARX generalised to N-dimensional lattices.",
    topologies=("hyperx",),
)
register_engine(
    "lash",
    LashRouting,
    description="Pair-granular lane assignment (LASH).",
)
register_engine(
    "nue",
    NueRouting,
    description="Nue: deadlock-free within any fixed VL budget.",
)
register_engine(
    "valiant",
    ValiantRouting,
    description="Valiant random-intermediate load balancing.",
)
register_engine(
    "fthx",
    FtHyperxRouting,
    description=(
        "Fault-tolerant dimension-aware HyperX shortest paths "
        "(per-dimension detours, incremental re-sweeps)."
    ),
)
register_engine(
    "fatpaths",
    FatPathsRouting,
    description="FatPaths-style layered multipath over the LMC LIDs.",
)

__all__ = [
    "RoutingEngine",
    "tree_to_destination",
    "MinHopRouting",
    "FtreeRouting",
    "UpDownRouting",
    "SsspRouting",
    "DfssspRouting",
    "ParxRouting",
    "SMALL_LID_CHOICE",
    "LARGE_LID_CHOICE",
    "HALF_REMOVED_BY_LID",
    "NdParxRouting",
    "NdParxPml",
    "nd_lid_choices",
    "LashRouting",
    "NueRouting",
    "verify_pair_layering",
    "ValiantRouting",
    "FtHyperxRouting",
    "FatPathsRouting",
    "DalSelector",
    "RoutingAudit",
    "audit_fabric",
    "EngineSpec",
    "register_engine",
    "create_engine",
    "engine_names",
    "engine_spec",
    "sm_kwargs_for",
    "engine_catalogue",
    "catalogue_markdown",
]
