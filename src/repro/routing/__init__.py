"""Routing engines producing InfiniBand linear forwarding tables.

All engines implement :class:`~repro.routing.base.RoutingEngine` and are
driven through :class:`~repro.ib.subnet_manager.OpenSM`:

* :class:`~repro.routing.minhop.MinHopRouting` — plain shortest paths,
* :class:`~repro.routing.ftree.FtreeRouting` — d-mod-k style up/down for
  Fat-Trees (OpenSM's ``ftree``),
* :class:`~repro.routing.updown.UpDownRouting` — topology-agnostic
  deadlock-free Up*/Down*,
* :class:`~repro.routing.sssp.SsspRouting` — Hoefler et al.'s globally
  balanced SSSP (deadlock-prone on cyclic topologies),
* :class:`~repro.routing.dfsssp.DfssspRouting` — SSSP + virtual-lane
  deadlock freedom (Domke et al.),
* :class:`~repro.routing.parx.ParxRouting` — the paper's contribution:
  pattern-aware, quadrant-masked minimal + non-minimal multipath routing
  for 2-D HyperX,
* :class:`~repro.routing.dal.DalSelector` — adaptive candidate paths
  (DAL/UGAL stand-in) consumed by the simulator, the paper's "what
  future hardware would do" baseline.
"""

from repro.routing.base import RoutingEngine
from repro.routing.dijkstra import tree_to_destination
from repro.routing.minhop import MinHopRouting
from repro.routing.ftree import FtreeRouting
from repro.routing.updown import UpDownRouting
from repro.routing.sssp import SsspRouting
from repro.routing.dfsssp import DfssspRouting
from repro.routing.parx import (
    ParxRouting,
    SMALL_LID_CHOICE,
    LARGE_LID_CHOICE,
    HALF_REMOVED_BY_LID,
)
from repro.routing.parx_nd import (
    NdParxRouting,
    NdParxPml,
    nd_lid_choices,
)
from repro.routing.lash import LashRouting, verify_pair_layering
from repro.routing.nue import NueRouting
from repro.routing.valiant import ValiantRouting
from repro.routing.dal import DalSelector
from repro.routing.validate import RoutingAudit, audit_fabric

__all__ = [
    "RoutingEngine",
    "tree_to_destination",
    "MinHopRouting",
    "FtreeRouting",
    "UpDownRouting",
    "SsspRouting",
    "DfssspRouting",
    "ParxRouting",
    "SMALL_LID_CHOICE",
    "LARGE_LID_CHOICE",
    "HALF_REMOVED_BY_LID",
    "NdParxRouting",
    "NdParxPml",
    "nd_lid_choices",
    "LashRouting",
    "NueRouting",
    "verify_pair_layering",
    "ValiantRouting",
    "DalSelector",
    "RoutingAudit",
    "audit_fabric",
]
