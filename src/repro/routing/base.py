"""Routing-engine interface and shared helpers.

An engine's job is to fill the per-switch linear forwarding tables of a
:class:`~repro.ib.fabric.Fabric` — one out-link per (switch, destination
LID) pair, the only thing InfiniBand hardware can express.  Everything
else (LID assignment, terminal hops, VL layering) is the subnet
manager's business.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.ib.fabric import Fabric


class RoutingEngine(ABC):
    """Base class for forwarding-table generators.

    Attributes
    ----------
    name:
        Engine identifier used in reports (mirrors OpenSM's
        ``--routing_engine`` values).
    provides_deadlock_freedom:
        If True the subnet manager runs the virtual-lane layering over
        this engine's output and guarantees (or refuses) deadlock
        freedom.  Plain SSSP sets this False — the paper's initial tests
        with it on the HyperX hit exactly that gap (section 3.2).
    """

    name: str = "abstract"
    provides_deadlock_freedom: bool = True

    @abstractmethod
    def compute(self, fabric: Fabric) -> None:
        """Fill ``fabric.tables``.

        The terminal hops (switch -> owned terminal) are already
        installed when this is called; the engine must add an entry for
        every (other switch, terminal LID) pair it can serve.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def install_tree(fabric: Fabric, dlid: int, parent: dict[int, int]) -> None:
    """Install a destination tree into the tables.

    ``parent`` maps each switch to its out-link toward the destination
    (as produced by :func:`repro.routing.dijkstra.tree_to_destination`);
    the destination's own switch keeps its pre-installed terminal hop.
    """
    for switch, link_id in parent.items():
        fabric.set_route(switch, dlid, link_id)
