"""Routing-engine interface and shared helpers.

An engine's job is to fill the per-switch linear forwarding tables of a
:class:`~repro.ib.fabric.Fabric` — one out-link per (switch, destination
LID) pair, the only thing InfiniBand hardware can express.  Everything
else (LID assignment, terminal hops, VL layering) is the subnet
manager's business.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Collection,
    Iterator,
    Mapping,
    Sequence,
)

import numpy as np

from repro.core.chunking import items_per_chunk
from repro.core.errors import UnreachableError
from repro.ib.fabric import Fabric

if TYPE_CHECKING:
    from repro.core.parallel import TreeJob
    from repro.topology.network import Network

_batched_sweep = True


def batched_sweep_enabled() -> bool:
    """Whether batched-capable engines route destination blocks.

    On by default; the equivalence tests flip it off to force the
    sequential per-destination path and compare outputs bit for bit.
    """
    return _batched_sweep


def set_batched_sweep(enabled: bool) -> bool:
    """Toggle the batched sweep globally; returns the previous value."""
    global _batched_sweep
    previous = _batched_sweep
    _batched_sweep = bool(enabled)
    return previous


@contextmanager
def batched_sweep(enabled: bool) -> Iterator[None]:
    """``with batched_sweep(False): ...`` — scoped toggle override.

    Restores the previous setting on exit even when the body raises, so
    a failing equivalence test cannot leave the whole suite running the
    sequential path.
    """
    previous = set_batched_sweep(enabled)
    try:
        yield
    finally:
        set_batched_sweep(previous)


class RoutingEngine(ABC):
    """Base class for forwarding-table generators.

    Attributes
    ----------
    name:
        Engine identifier used in reports (mirrors OpenSM's
        ``--routing_engine`` values).
    provides_deadlock_freedom:
        If True the subnet manager runs the virtual-lane layering over
        this engine's output and guarantees (or refuses) deadlock
        freedom.  Plain SSSP sets this False — the paper's initial tests
        with it on the HyperX hit exactly that gap (section 3.2).
    """

    name: str = "abstract"
    provides_deadlock_freedom: bool = True
    #: Engines that install their own lane assignment during
    #: :meth:`compute` (LASH's per-pair layers, Nue's budgeted lanes)
    #: set this True and ``provides_deadlock_freedom`` False: the SM
    #: must not overwrite their lanes, yet the result is still
    #: deadlock-free — the catalogue reports the union of both flags.
    self_layering: bool = False
    #: Engines whose trees depend only on the current topology (no
    #: weight feedback between destinations) can recompute a subset of
    #: destination trees with bit-identical results; they set this True
    #: and implement :meth:`recompute_destinations`.
    supports_incremental_resweep: bool = False
    #: Engines whose per-destination weights are independent of other
    #: destinations can route whole destination blocks per numpy pass
    #: (:func:`repro.routing.arrays.tree_core_batch`) instead of one
    #: Python heap per LID, with bit-identical tables; they set this
    #: True.  The sequential path stays available behind
    #: :func:`set_batched_sweep` as the executable spec.
    supports_batched_sweep: bool = False
    #: Batched engines whose per-column weights can be *declared* — as
    #: shared arrays plus a per-column recipe — rather than computed,
    #: additionally implement :meth:`_sweep_job`/:meth:`_install_sweep`
    #: and set this True: their cold sweeps and large re-sweeps then
    #: shard destination columns across the worker pool
    #: (:mod:`repro.core.parallel`) with bit-identical tables at any
    #: worker count.  Engines with cross-destination weight feedback
    #: (the SSSP family) can never set this.
    parallel_sweep_safe: bool = False
    #: Subnet-manager settings this engine needs to operate (e.g. PARX
    #: declares ``{"lmc": 2, "lid_policy": "quadrant"}``).  Consumed by
    #: :meth:`repro.ib.subnet_manager.OpenSM.run` for every parameter
    #: the caller did not set explicitly — callers no longer re-supply
    #: the engine's tuple at each construction site.
    sm_defaults: Mapping[str, Any] = {}
    #: When True the subnet manager's virtual-lane layering processes
    #: destinations grouped by LID index (layer) instead of plain LID
    #: order, giving layered multi-LID engines (FatPaths) layer -> VL
    #: affinity: each layer's destinations pack into lanes together.
    vl_group_by_lid_index: bool = False

    def vl_layering_key(self, fabric: Fabric, dlid: int) -> tuple:
        """Sort key ordering destinations for the VL layering.

        Greedy first-fit layering is order-dependent: destinations whose
        trees share a path discipline should be processed contiguously
        so they pack into the same lanes before a differently-shaped
        family opens new ones.  The default honours
        :attr:`vl_group_by_lid_index` and otherwise keeps plain LID
        order; engines with their own tree families (e.g. per-
        destination dimension orders) override this.  The key must be a
        pure function of (fabric, dlid) — every re-layering of the same
        fabric must reproduce the same order.
        """
        if self.vl_group_by_lid_index:
            return (fabric.lidmap.index_of(dlid), dlid)
        return (0, dlid)

    def check_topology(self, net: "Network") -> None:
        """Validate the engine/topology pairing before any LID work.

        The subnet manager calls this at the start of :meth:`run` —
        before LIDs are resolved from :attr:`sm_defaults` — so an engine
        can refuse an unsupported topology with its own diagnostic
        (e.g. PARX raising :class:`~repro.core.errors.ConfigurationError`
        for an odd-shaped lattice) rather than the LID policy failing
        first with a less specific error.  The default accepts anything.
        """

    @abstractmethod
    def compute(self, fabric: Fabric) -> None:
        """Fill ``fabric.tables``.

        The terminal hops (switch -> owned terminal) are already
        installed when this is called; the engine must add an entry for
        every (other switch, terminal LID) pair it can serve.
        """

    def recompute_destinations(
        self, fabric: Fabric, dlids: Collection[int]
    ) -> None:
        """Recompute only the given destination LIDs' trees in place.

        Must leave every (switch, dlid) entry for ``dlids`` exactly as a
        full :meth:`compute` on the current topology would, and touch no
        other destination's entries.  Only meaningful when
        :attr:`supports_incremental_resweep` is True.
        """
        raise NotImplementedError(
            f"{self.name} does not support incremental re-sweeps"
        )

    def _sweep_job(
        self, fabric: Fabric, dlids: list[int]
    ) -> "TreeJob | None":
        """Describe a full sweep over ``dlids`` as a pool job.

        ``parallel_sweep_safe`` engines return a
        :class:`~repro.core.parallel.TreeJob` whose weight spec and
        graph shards reproduce the serial block loop's kernel inputs
        column for column; ``None`` declines (weights not shareable for
        this fabric) and keeps the sweep serial.
        """
        return None

    def _install_sweep(
        self,
        fabric: Fabric,
        dlids: list[int],
        job: "TreeJob",
        plid: np.ndarray,
    ) -> None:
        """Install a finished pool sweep's plid buffer into the tables.

        Runs parent-side, in global LID order, with the engine's own
        unreachable handling — the exact installation the serial path
        performs, just fed from the shared buffer.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def parallel_route_columns(
    engine: RoutingEngine,
    fabric: Fabric,
    dlids: Sequence[int],
    *,
    before_install: Callable[[], None] | None = None,
) -> bool:
    """Try to run one sweep over ``dlids`` on the worker pool.

    Returns True when the pool routed *and installed* every column —
    the caller's serial block loop is then already done.  False means
    "route serially": the engine is not pool-safe, parallelism is off,
    the column count is under the floor, the engine declined to build a
    job, or the pool failed (spawn failure / worker death — both count
    a ``serial_fallbacks`` stat and tear the pool down).

    ``before_install`` runs after the pool has produced the full result
    but before any column is installed — re-sweeps pass their
    column-reset pass here, so a pool failure leaves the old tables
    fully intact for the serial fallback.
    """
    if not getattr(engine, "parallel_sweep_safe", False):
        return False
    from repro.core import parallel as par

    if par.get_sweep_workers() <= 1 or len(dlids) < par.get_column_floor():
        return False
    job = engine._sweep_job(fabric, list(dlids))
    if job is None:
        return False
    result = par.run_tree_job(job)
    if result is None:
        return False
    try:
        if before_install is not None:
            before_install()
        engine._install_sweep(fabric, list(dlids), job, result.plid)
    finally:
        result.release()
    return True


def install_tree(fabric: Fabric, dlid: int, parent: dict[int, int]) -> None:
    """Install a destination tree into the tables.

    ``parent`` maps each switch to its out-link toward the destination
    (as produced by :func:`repro.routing.dijkstra.tree_to_destination`);
    the destination's own switch keeps its pre-installed terminal hop.

    Equivalent to ``fabric.set_route`` per entry — including the
    leaves-this-switch validation, done as one vectorised check — but
    writes the whole destination column with a single scatter.
    """
    tables = fabric.tables
    col = tables.column_of(dlid) if hasattr(tables, "column_of") else None
    if col is None or not parent:
        for switch, link_id in parent.items():
            fabric.set_route(switch, dlid, link_id)
        return
    graph = fabric.net.switch_graph()
    switches = np.fromiter(parent.keys(), np.int64, len(parent))
    links = np.fromiter(parent.values(), np.int64, len(parent))
    bad = np.flatnonzero(graph.link_src_node[links] != switches)
    if bad.size:
        # Same diagnostic set_route would raise for the first offender.
        fabric.set_route(int(switches[bad[0]]), dlid, int(links[bad[0]]))
    tables.install_column(col, graph.index[switches], links, switches)


def destination_block_width(fabric: Fabric) -> int:
    """Kernel block width under the shared chunk budget, never below 1.

    Each destination column costs one per-link weight column plus the
    kernel's per-switch state; the width keeps a block's transient
    working set under the :mod:`repro.core.chunking` budget regardless
    of fabric size.  Pool workers receive this width *resolved* by the
    parent (spawned processes would otherwise miss runtime
    ``set_chunk_bytes`` overrides) so their kernel sub-blocks match the
    serial loop's.
    """
    net = fabric.net
    per_dlid = len(net.links) * 8 + net.num_switches * 32
    return items_per_chunk(per_dlid)


def destination_blocks(
    fabric: Fabric, dlids: Sequence[int]
) -> list[list[int]]:
    """Split a destination list into kernel-sized blocks.

    Block width is bounded by the shared chunk budget — see
    :func:`destination_block_width`.
    """
    k = destination_block_width(fabric)
    return [list(dlids[i : i + k]) for i in range(0, len(dlids), k)]


def column_tree(
    graph: Any, plid_col: np.ndarray, hops_col: np.ndarray | None = None
) -> tuple[dict[int, int], dict[int, int]]:
    """Rebuild the sequential ``(parent, hops)`` dicts from one kernel column.

    Only used on the unreachable-destination slow path, where an
    engine's overridable ``_check_reach`` expects the dict view the
    per-destination loop (:func:`~repro.routing.dijkstra.tree_to_destination`)
    would have handed it.  ``hops`` is empty when ``hops_col`` is not
    supplied (engines whose reach check ignores it).
    """
    from repro.routing.arrays import UNREACHED_HOPS

    switches = graph.switches
    parent = {
        switches[u]: int(plid_col[u])
        for u in np.flatnonzero(plid_col >= 0).tolist()
    }
    hops: dict[int, int] = {}
    if hops_col is not None:
        hops = {
            switches[u]: int(hops_col[u])
            for u in np.flatnonzero(hops_col != UNREACHED_HOPS).tolist()
        }
    return parent, hops


def install_tree_columns(
    fabric: Fabric,
    dlids: Sequence[int],
    dest_switches: Sequence[int],
    plid: np.ndarray,
    *,
    on_unreachable: Callable[[int, int, int], None] | None = None,
) -> None:
    """Check reach and install one kernel output block, column by column.

    ``plid`` is :func:`repro.routing.arrays.tree_core_batch` output for
    ``dlids`` (column ``j`` routes ``dlids[j]`` toward node id
    ``dest_switches[j]``).  Columns are checked *and* installed in
    ``dlids`` order, so an unreachable destination mid-block raises the
    sequential path's exact :class:`UnreachableError` — first failing
    LID, first failing switch in ``host_switches`` order — with every
    earlier column already installed, just as the per-destination loop
    would leave the tables.

    ``on_unreachable(j, dlid, dsw)`` replaces the default raise: engines
    pass an adapter that routes the failure through their overridable
    ``_check_reach`` hook (see :func:`column_tree`), so subclasses that
    tolerate partitioned fabrics behave identically batched and
    sequential — the column installs with unreached rows left at ``-1``.
    """
    graph = fabric.net.switch_graph()
    tables = fabric.tables
    switch_arr = np.asarray(graph.switches, dtype=np.int64)
    host = graph.host_switches
    for j, dlid in enumerate(dlids):
        dsw = dest_switches[j]
        column = plid[:, j]
        missing = host[column[host] < 0]
        for u in missing.tolist():
            sw = graph.switches[u]
            if sw != dsw:
                if on_unreachable is None:
                    raise UnreachableError(
                        f"switch {sw} cannot reach destination lid {dlid}"
                    )
                on_unreachable(j, dlid, dsw)
                break
        rows = np.flatnonzero(column >= 0)
        links = column[rows]
        switches = switch_arr[rows]
        bad = np.flatnonzero(graph.link_src_node[links] != switches)
        if bad.size:
            # Same diagnostic set_route would raise for the offender.
            fabric.set_route(int(switches[bad[0]]), dlid, int(links[bad[0]]))
        tables.install_column(tables.column_of(dlid), rows, links, switches)
