"""Routing audits: reachability, loop freedom, minimality, deadlocks.

The paper's criterion (4) — "loop-free, fault-tolerant and
deadlock-free" — plus the minimality accounting behind criteria (1)/(2)
(how many pairs route minimally vs via detours), bundled into a single
:class:`RoutingAudit` that tests and experiments can assert on.

Correctness findings are delegated to the fabric linter
(:mod:`repro.analysis`): every failure is a structured
:class:`~repro.analysis.Diagnostic` with a stable rule code and a
witness, and the deadlock check returns a concrete per-VL credit-loop
certificate instead of a bare boolean.  The ``failures`` list keeps a
``str()``-compatible shim (each diagnostic prints and substring-matches
like the free-form strings it replaced).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.analysis.diagnostics import Diagnostic
from repro.core.errors import ReproError
from repro.core.rng import make_rng
from repro.ib.deadlock import CreditLoop, find_credit_loop
from repro.ib.fabric import Fabric

if TYPE_CHECKING:
    from repro.topology.network import Network


@dataclass
class RoutingAudit:
    """Result of :func:`audit_fabric`.

    Attributes
    ----------
    pairs_checked:
        Number of (source, destination LID) pairs resolved.
    unreachable:
        Pairs with no route (should be 0 on a healthy fabric).
    loops:
        Pairs whose table walk revisited a switch (must be 0; the walk
        raises, we count).
    minimal_pairs / non_minimal_pairs:
        Pairs routed at exactly / above the hop-count distance of the
        underlying graph.  PARX deliberately produces non-minimal pairs
        (its detour LIDs); single-path engines should be fully minimal.
    max_stretch:
        Largest (actual hops - minimal hops) observed.
    deadlock_free:
        Exact (path-based) CDG acyclicity per virtual lane.
    credit_loop:
        The witnessed CDG cycle when ``deadlock_free`` is False: the
        virtual lane plus the ordered channel list a packet chain would
        deadlock on (see :class:`repro.ib.deadlock.CreditLoop`).
    num_vls:
        Lanes the fabric uses.
    failures:
        Structured diagnostics (``FAB001`` black holes, ``FAB002``
        loops, ``FAB003`` credit loops); each stringifies like the
        legacy free-form entries.
    """

    pairs_checked: int = 0
    unreachable: int = 0
    loops: int = 0
    minimal_pairs: int = 0
    non_minimal_pairs: int = 0
    max_stretch: int = 0
    deadlock_free: bool = True
    credit_loop: CreditLoop | None = None
    num_vls: int = 1
    failures: list[Diagnostic] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No unreachable pairs, no loops, deadlock-free."""
        return not self.unreachable and not self.loops and self.deadlock_free

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (the ``repro route --format json`` payload)."""
        return {
            "pairs_checked": self.pairs_checked,
            "unreachable": self.unreachable,
            "loops": self.loops,
            "minimal_pairs": self.minimal_pairs,
            "non_minimal_pairs": self.non_minimal_pairs,
            "max_stretch": self.max_stretch,
            "deadlock_free": self.deadlock_free,
            "credit_loop": (
                None if self.credit_loop is None else {
                    "vl": self.credit_loop.vl,
                    "channels": list(self.credit_loop.channels),
                }
            ),
            "num_vls": self.num_vls,
            "clean": self.clean,
            "failures": [d.to_dict() for d in self.failures],
        }


def audit_fabric(
    fabric: Fabric,
    sample_pairs: int | None = None,
    seed: int = 0,
    check_deadlock: bool = True,
) -> RoutingAudit:
    """Audit a routed fabric.

    ``sample_pairs`` bounds the number of (source, destination-LID)
    pairs examined on big fabrics; ``None`` checks all of them.
    """
    net = fabric.net
    audit = RoutingAudit(num_vls=fabric.num_vls)
    dlids = fabric.lidmap.terminal_lids(net)
    terminals = net.terminals

    pairs: list[tuple[int, int]] = [
        (src, dlid)
        for dlid in dlids
        for src in terminals
        if src != fabric.lidmap.node_of(dlid)
    ]
    if sample_pairs is not None and sample_pairs < len(pairs):
        rng = make_rng(seed)
        idx = rng.choice(len(pairs), size=sample_pairs, replace=False)
        pairs = [pairs[i] for i in idx]

    min_hops_cache: dict[int, dict[int, int]] = {}
    dest_paths: dict[int, list[list[int]]] = {}
    for src, dlid in pairs:
        audit.pairs_checked += 1
        try:
            path = fabric.resolve(src, dlid)
        except ReproError as exc:
            if "loop" in str(exc):
                audit.loops += 1
                code = "FAB002"
            else:
                audit.unreachable += 1
                code = "FAB001"
            audit.failures.append(Diagnostic(
                code, f"{src}->{dlid}: {exc}", lid=dlid,
                witness={"source": src, "dlid": dlid, "error": str(exc)},
            ))
            continue
        dest_paths.setdefault(dlid, []).append(path)
        hops = net.path_hops(path)
        dsw = net.attached_switch(fabric.lidmap.node_of(dlid))
        ssw = net.attached_switch(src)
        base = _min_hops(net, dsw, min_hops_cache).get(ssw)
        if base is None:
            audit.failures.append(Diagnostic(
                "FAB001", f"{src}->{dlid}: graph-level unreachable",
                lid=dlid,
                witness={"source": src, "dlid": dlid,
                         "reason": "graph-level unreachable"},
            ))
            audit.unreachable += 1
            continue
        stretch = hops - base
        if stretch == 0:
            audit.minimal_pairs += 1
        else:
            audit.non_minimal_pairs += 1
            audit.max_stretch = max(audit.max_stretch, stretch)

    if check_deadlock and dest_paths:
        loop = find_credit_loop(net, dest_paths, fabric.vl_of_dlid)
        if loop is not None:
            audit.deadlock_free = False
            audit.credit_loop = loop
            audit.failures.append(Diagnostic(
                "FAB003", str(loop), vl=loop.vl,
                witness={"vl": loop.vl, "channels": list(loop.channels)},
            ))
    return audit


def _min_hops(
    net: "Network", dest_switch: int, cache: dict[int, dict[int, int]]
) -> dict[int, int]:
    """BFS hop distances to a destination switch over enabled links."""
    if dest_switch in cache:
        return cache[dest_switch]
    dist = {dest_switch: 0}
    queue = deque([dest_switch])
    while queue:
        u = queue.popleft()
        for link in net.in_links(u):
            v = link.src
            if net.is_switch(v) and v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    # Switch-to-switch hops between terminals: path s-terminal ->
    # s-switch -> ... -> d-switch -> d-terminal crosses dist+1 cables
    # between switches when src != dst switch; path_hops counts
    # switch-switch links, which equals dist.
    cache[dest_switch] = dist
    return dist
