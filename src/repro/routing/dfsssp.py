"""DFSSSP: deadlock-free SSSP routing (Domke, Hoefler & Nagel, IPDPS '11).

Path calculation is identical to :class:`~repro.routing.sssp.SsspRouting`
— the modified Dijkstra with +1-per-path edge updates — but the engine
declares ``provides_deadlock_freedom``, so the subnet manager partitions
destination LIDs over virtual lanes until every lane's channel
dependency graph is acyclic.

This is the routing the paper deploys on the HyperX plane (combinations
3 and 4 of section 4.4.3); on the 12x8 HyperX it needs 3 of the 8
available VLs.  It is also the base algorithm PARX modifies.
"""

from __future__ import annotations

from repro.routing.sssp import SsspRouting


class DfssspRouting(SsspRouting):
    """SSSP path calculation + subnet-manager VL layering."""

    name = "dfsssp"
    provides_deadlock_freedom = True
