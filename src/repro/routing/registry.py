"""The single source of truth for routing-engine construction.

Before this registry existed, engine construction was forked between
``cli.py`` (a private name -> class dict) and the experiment layer's
``make_engine`` if-chain — which covered only four of the engines, so
campaigns and resilience sweeps could not race most of the catalogue.
Now every consumer (``repro route --engine``, ``Combination.routing``,
re-sweeps after fabric events) resolves engines identically:

>>> engine = create_engine("dfsssp")
>>> engine, kwargs = create_engine("parx", demands), sm_kwargs_for("parx")

Registration declares, per engine, how to build it (``factory``), which
subnet-manager settings it needs (``sm_kwargs`` — normally the engine
class's own declared ``sm_defaults``), whether it ingests a
communication profile (``needs_demands``), and which topology families
it is defined for (``topologies`` — empty means any).  The catalogue
helpers expose the same metadata for documentation tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.errors import ConfigurationError
from repro.routing.base import RoutingEngine


@dataclass(frozen=True)
class EngineSpec:
    """One registered routing engine.

    Attributes
    ----------
    name:
        Public engine name (CLI value, ``Combination.routing`` value).
    factory:
        Zero-argument constructor — or, with ``needs_demands``, a
        one-argument constructor taking the communication profile.
    sm_kwargs:
        Subnet-manager settings the engine runs under; kept for callers
        that construct :class:`~repro.ib.subnet_manager.OpenSM`
        explicitly (``OpenSM.run`` would resolve the same values from
        the engine's ``sm_defaults`` anyway).
    needs_demands:
        Whether :func:`create_engine` forwards the ``demands`` profile
        to the factory (PARX-family engines).
    description:
        One-line summary for the documentation catalogue.
    topologies:
        Topology families the engine is defined for (``"hyperx"``,
        ``"fattree"``); empty means topology-agnostic.  Consumed by the
        registry contract tests and the docs table.
    """

    name: str
    factory: Callable[..., RoutingEngine]
    sm_kwargs: Mapping[str, Any] = field(default_factory=dict)
    needs_demands: bool = False
    description: str = ""
    topologies: tuple[str, ...] = ()


_REGISTRY: dict[str, EngineSpec] = {}


def register_engine(
    name: str,
    factory: Callable[..., RoutingEngine],
    *,
    sm_kwargs: Mapping[str, Any] | None = None,
    needs_demands: bool = False,
    description: str = "",
    topologies: tuple[str, ...] = (),
) -> EngineSpec:
    """Register a routing engine under a public name.

    ``sm_kwargs`` defaults to the engine class's declared
    ``sm_defaults`` (when ``factory`` is the class itself), so the
    registry never re-states a tuple the engine already declares.
    Re-registering a name is a :class:`ConfigurationError` — two
    engines silently shadowing each other is exactly the forked-
    construction bug this registry exists to prevent.
    """
    if name in _REGISTRY:
        raise ConfigurationError(f"engine {name!r} is already registered")
    if sm_kwargs is None:
        sm_kwargs = dict(getattr(factory, "sm_defaults", None) or {})
    spec = EngineSpec(
        name=name,
        factory=factory,
        sm_kwargs=dict(sm_kwargs),
        needs_demands=needs_demands,
        description=description,
        topologies=tuple(topologies),
    )
    _REGISTRY[name] = spec
    return spec


def engine_names() -> list[str]:
    """All registered engine names, sorted."""
    return sorted(_REGISTRY)


def engine_spec(name: str) -> EngineSpec:
    """The registration record of one engine.

    Unknown names raise with the full sorted catalogue, so a typo in a
    CLI flag or a campaign key names its alternatives.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; registered engines: {engine_names()}"
        ) from None


def create_engine(
    name: str,
    demands: Mapping[int, Mapping[int, int]] | None = None,
) -> RoutingEngine:
    """Instantiate a registered engine.

    ``demands`` (a communication profile) is forwarded to engines that
    declared ``needs_demands`` and ignored by the rest — callers can
    pass whatever profile they have without knowing the engine family.
    """
    spec = engine_spec(name)
    if spec.needs_demands:
        return spec.factory(demands)
    return spec.factory()


def sm_kwargs_for(name: str) -> dict[str, Any]:
    """The subnet-manager settings a registered engine runs under."""
    return dict(engine_spec(name).sm_kwargs)


def engine_catalogue() -> list[dict[str, Any]]:
    """Metadata rows for every registered engine (docs / JSON)."""
    rows = []
    for name in engine_names():
        spec = _REGISTRY[name]
        probe = create_engine(name)
        rows.append({
            "name": name,
            "deadlock_free": bool(
                probe.provides_deadlock_freedom or probe.self_layering
            ),
            "incremental_resweep": bool(probe.supports_incremental_resweep),
            "batched_sweep": bool(probe.supports_batched_sweep),
            "parallel_sweep": bool(
                getattr(probe, "parallel_sweep_safe", False)
            ),
            "needs_demands": bool(spec.needs_demands),
            "sm_kwargs": dict(spec.sm_kwargs),
            "topologies": list(spec.topologies) or ["any"],
            "description": spec.description,
        })
    return rows


def catalogue_markdown() -> str:
    """The engine catalogue as a Markdown table (README / DESIGN)."""
    lines = [
        "| engine | deadlock-free | incremental re-sweep | batched sweep "
        "| parallel sweep | demands-aware | topologies | description |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for row in engine_catalogue():
        lines.append(
            "| `{name}` | {dl} | {inc} | {bat} | {par} | {dem} "
            "| {topo} | {desc} |".format(
                name=row["name"],
                dl="yes" if row["deadlock_free"] else "no",
                inc="yes" if row["incremental_resweep"] else "no",
                bat="yes" if row["batched_sweep"] else "no",
                par="yes" if row["parallel_sweep"] else "no",
                dem="yes" if row["needs_demands"] else "no",
                topo=", ".join(row["topologies"]),
                desc=row["description"],
            )
        )
    return "\n".join(lines)
