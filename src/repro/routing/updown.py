"""Up*/Down* routing (Schroeder et al., Autonet) — topology agnostic.

The classic deadlock-free fallback the paper cites (section 3.2.1):
orient every cable "up" toward a BFS root and forbid up-turns after the
first down-turn.  Any up*/down* path set has an acyclic CDG on a single
virtual lane, at the cost of concentrating traffic near the root — the
well-known bottleneck that motivates SSSP-family engines.

Forwarding must stay destination-based, so each switch's next hop is
chosen as: descend if a strictly-descending continuation reaches the
destination; otherwise climb via an up-neighbour whose legal reach
contains it.  Climbing strictly decreases BFS depth and descending never
turns back up, so composed routes are legal and loop-free by
construction (asserted in tests).
"""

from __future__ import annotations

from collections import deque

from repro.core.errors import UnreachableError
from repro.ib.fabric import Fabric
from repro.routing.base import RoutingEngine
from repro.topology.network import Network


class UpDownRouting(RoutingEngine):
    """BFS-rooted Up*/Down* with deterministic port choice."""

    name = "updown"
    provides_deadlock_freedom = True

    def __init__(self, root: int | None = None) -> None:
        #: Root switch of the up/down orientation; defaults to the
        #: lowest-id switch (OpenSM picks by GUID, equally arbitrary).
        self.root = root

    def compute(self, fabric: Fabric) -> None:
        net = fabric.net
        root = self.root if self.root is not None else net.switches[0]
        depth = _bfs_depth(net, root)
        down_reach, legal_reach = _reach_sets(net, depth)

        ordinals = {t: i for i, t in enumerate(net.terminals)}
        for t in net.terminals:
            ordinal = ordinals[t]
            tsw = net.attached_switch(t)
            for dlid in fabric.lidmap.lids_of(t):
                for sw in net.switches:
                    if sw == tsw:
                        continue
                    link = self._choose(
                        net, depth, down_reach, legal_reach, sw, t, ordinal
                    )
                    if link is not None:
                        fabric.set_route(sw, dlid, link)

    @staticmethod
    def _choose(
        net: Network,
        depth: dict[int, int],
        down_reach: dict[int, frozenset[int]],
        legal_reach: dict[int, frozenset[int]],
        sw: int,
        dest: int,
        ordinal: int,
    ) -> int | None:
        # "Down" = away from the root (deeper), ties broken by node id so
        # that every cable has a definite orientation.
        down = [
            link.id
            for link in net.out_links(sw)
            if net.is_switch(link.dst)
            and _is_down(depth, sw, link.dst)
            and dest in down_reach[link.dst]
        ]
        if down:
            return down[ordinal % len(down)]
        up = [
            link.id
            for link in net.out_links(sw)
            if net.is_switch(link.dst)
            and not _is_down(depth, sw, link.dst)
            and dest in legal_reach[link.dst]
        ]
        if up:
            return up[ordinal % len(up)]
        # No legal continuation (possible on faulty fabrics); leave the
        # table entry empty, as real OpenSM does — traffic for this
        # destination never transits this switch.
        return None


def _is_down(depth: dict[int, int], u: int, v: int) -> bool:
    """Link u -> v heads away from the root."""
    return (depth[v], v) > (depth[u], u)


def _bfs_depth(net: Network, root: int) -> dict[int, int]:
    depth = {root: 0}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for link in net.out_links(u):
            v = link.dst
            if net.is_switch(v) and v not in depth:
                depth[v] = depth[u] + 1
                queue.append(v)
    missing = [s for s in net.switches if s not in depth]
    if missing:
        raise UnreachableError(
            f"switch graph is disconnected; {len(missing)} switches "
            f"unreachable from root {root}"
        )
    return depth


def _reach_sets(
    net: Network, depth: dict[int, int]
) -> tuple[dict[int, frozenset[int]], dict[int, frozenset[int]]]:
    """``down_reach`` bottom-up, then ``legal_reach`` top-down.

    The up/down orientation is a DAG (depth with id tie-break is a
    strict order), so processing switches by descending (depth, id)
    visits every down-neighbour before its up-neighbour and vice versa.
    """
    order = sorted(net.switches, key=lambda s: (depth[s], s), reverse=True)
    down_reach: dict[int, frozenset[int]] = {}
    for sw in order:  # deepest first: down-neighbours already done
        acc: set[int] = set(net.attached_terminals(sw))
        for link in net.out_links(sw):
            if net.is_switch(link.dst) and _is_down(depth, sw, link.dst):
                acc.update(down_reach[link.dst])
        down_reach[sw] = frozenset(acc)

    legal_reach: dict[int, frozenset[int]] = {}
    for sw in reversed(order):  # shallowest first: up-neighbours done
        acc = set(down_reach[sw])
        for link in net.out_links(sw):
            if net.is_switch(link.dst) and not _is_down(depth, sw, link.dst):
                acc.update(legal_reach[link.dst])
        legal_reach[sw] = frozenset(acc)
    return down_reach, legal_reach
