"""SSSP routing (Hoefler, Schneider & Lumsdaine, HOTI '09).

Processes destinations one at a time; after installing each destination
tree it adds +1 to the weight of every link for every source path using
that link.  Later destinations therefore avoid already-loaded links —
a *global* balancing that is oblivious to the actual workload (the
contrast PARX draws in section 3.2.3).

The paper uses SSSP (with clustered placement) as the second Fat-Tree
configuration: on a faulty tree it "theoretically yields increased
throughput" over ftree.  Plain SSSP performs no virtual-lane layering —
the paper's initial HyperX tests with it hit deadlocks, which is why
DFSSSP exists.
"""

from __future__ import annotations


from repro.core.errors import UnreachableError
from repro.ib.fabric import Fabric
from repro.routing.base import RoutingEngine, install_tree
from repro.routing.dijkstra import accumulate_tree_loads, tree_to_destination


class SsspRouting(RoutingEngine):
    """Globally balanced shortest-path routing, no deadlock guarantee."""

    name = "sssp"
    provides_deadlock_freedom = False

    def compute(self, fabric: Fabric) -> None:
        net = fabric.net
        weights = [1.0] * len(net.links)
        graph = net.switch_graph()
        host_switches = [graph.switches[u] for u in graph.host_switches.tolist()]
        # Injected demand per switch = one unit per attached terminal
        # ("+1 per path", every terminal sources one path per dest).
        base_sources = {
            sw: float(graph.attached_counts[u])
            for u, sw in zip(graph.host_switches.tolist(), host_switches)
        }
        for dlid in fabric.lidmap.terminal_lids(net):
            dst = fabric.lidmap.node_of(dlid)
            dsw = net.attached_switch(dst)
            parent, hops = tree_to_destination(net, dsw, weights)
            for sw in host_switches:
                if sw != dsw and sw not in parent:
                    raise UnreachableError(
                        f"switch {sw} cannot reach destination lid {dlid}"
                    )
            install_tree(fabric, dlid, parent)
            sources = dict(base_sources)
            # The destination's own switch sources one path less (the
            # destination terminal does not route to itself).
            sources[dsw] = max(0.0, sources.get(dsw, 0.0) - 1.0)
            for link_id, load in accumulate_tree_loads(
                net, parent, hops, sources
            ).items():
                weights[link_id] += load
