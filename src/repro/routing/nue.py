"""Nue routing (Domke, Hoefler & Matsuoka, HPDC '16) — deadlock-free
routing within a *fixed* number of virtual lanes.

The paper lists Nue with DFSSSP/LASH as the few deadlock-free options
for statically routed InfiniBand (§6).  Its distinguishing guarantee:
where DFSSSP *discovers* how many lanes it needs (and may exceed the
hardware), Nue is handed the lane budget up front and constructs routes
that fit it, by "routing on the channel dependency graph": destinations
are partitioned across the available lanes, and each lane's paths are
grown so that the lane's channel-dependency graph stays acyclic *by
construction* — a relaxation that would close a cycle is simply not
taken, and Dijkstra finds a way around it.

This implementation follows that construction at destination-tree
granularity:

1. destination LIDs are partitioned round-robin over the lanes;
2. within a lane, each destination tree is built by a modified Dijkstra
   whose relaxations carry the channel dependency they would commit
   (``(candidate in-link, already-fixed out-link of the next hop)``)
   and are rejected when that dependency would close a cycle in the
   lane's accumulated CDG;
3. because rejected relaxations leave alternatives in the frontier, the
   search naturally detours around "forbidden turns"; paths may exceed
   minimal length (Nue's documented cost);
4. the last lane is the *escape lane* (Nue's escape channels): its
   routes obey an Up*/Down* turn model around a fixed root, whose legal
   turn set is acyclic by the classic theorem — so any destination the
   greedy lanes refuse is guaranteed a home, and a budget of one lane
   degenerates to weighted Up*/Down* routing, never to failure.

The result is always deadlock-free within the given budget — verified
by the standard path-based audit in the tests.  Compared to the real
Nue this variant is more eager to spend the escape lane (it explores
one relaxation order, not the full dependency graph), costing path
quality rather than correctness.
"""

from __future__ import annotations

import heapq


from repro.core.errors import DeadlockError, UnreachableError
from repro.ib.cdg import addition_creates_cycle
from repro.ib.fabric import Fabric
from repro.routing.base import RoutingEngine, install_tree
from repro.topology.network import Network

_INF = (1 << 30, float("inf"))


class NueRouting(RoutingEngine):
    """Deadlock-free routing within a caller-fixed virtual-lane budget."""

    name = "nue"
    provides_deadlock_freedom = False  # self-layered, by construction
    self_layering = True

    def __init__(self, num_vls: int = 2) -> None:
        if num_vls < 1:
            raise DeadlockError(f"need at least one lane, got {num_vls}")
        self.num_vls = num_vls

    def compute(self, fabric: Fabric) -> None:
        net = fabric.net
        weights = [1.0] * len(net.links)
        dlids = fabric.lidmap.terminal_lids(net)
        n_greedy = self.num_vls - 1
        lanes: list[dict[int, set[int]]] = [dict() for _ in range(n_greedy)]
        escape_down = _escape_orientation(net, net.switches[0])
        vl_of: dict[int, int] = {}

        for i, dlid in enumerate(dlids):
            placed = False
            if n_greedy:
                order = sorted(
                    range(n_greedy),
                    key=lambda l: (l != i % n_greedy, _cdg_size(lanes[l])),
                )
                for lane_idx in order:
                    result = self._constrained_tree(
                        net, fabric, dlid, weights, lanes[lane_idx]
                    )
                    if result is None:
                        continue
                    parent, deps = result
                    install_tree(fabric, dlid, parent)
                    for a, b in deps:
                        lanes[lane_idx].setdefault(a, set()).add(b)
                        lanes[lane_idx].setdefault(b, set())
                    for link_id in parent.values():
                        weights[link_id] += 1.0
                    vl_of[dlid] = lane_idx
                    placed = True
                    break
            if not placed:
                parent = self._escape_tree(net, fabric, dlid, weights, escape_down)
                install_tree(fabric, dlid, parent)
                for link_id in parent.values():
                    weights[link_id] += 1.0
                vl_of[dlid] = self.num_vls - 1
                placed = True

        fabric.vl_of_dlid = vl_of
        fabric.num_vls = self.num_vls

    def _escape_tree(
        self,
        net: Network,
        fabric: Fabric,
        dlid: int,
        weights: list[float],
        is_down: dict[int, bool],
    ) -> dict[int, int]:
        """Weighted Dijkstra restricted to legal up*/down* turns.

        A packet may never turn from a *down* channel onto an *up*
        channel; the legal turn set is acyclic around the fixed root, so
        every destination routed here shares one deadlock-free lane.
        """
        dst = fabric.lidmap.node_of(dlid)
        dsw = net.attached_switch(dst)
        parent: dict[int, int] = {}
        done: set[int] = set()
        dist: dict[int, tuple[int, float]] = {dsw: (0, 0.0)}
        heap: list[tuple[int, float, float, int, int]] = [(0, 0.0, 0.0, -1, dsw)]
        while heap:
            hops_u, w_u, _, plink, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            if plink >= 0:
                parent[u] = plink
            for link in net.in_links(u):
                v = link.src
                if v in done or not net.is_switch(v):
                    continue
                out = parent.get(u)
                if out is not None and net.is_switch(net.link(out).dst):
                    # Turn at u: in-channel link (v->u), out-channel out.
                    if is_down[link.id] and not is_down[out]:
                        continue  # illegal down->up turn
                cand = (hops_u + 1, w_u + float(weights[link.id]))
                if cand < dist.get(v, _INF):
                    dist[v] = cand
                heapq.heappush(
                    heap,
                    (cand[0], cand[1], float(weights[link.id]), link.id, v),
                )
        for sw in net.switches:
            if sw != dsw and sw not in parent and net.attached_terminals(sw):
                raise UnreachableError(
                    f"escape lane cannot reach switch {sw} for lid {dlid} "
                    "(disconnected fabric?)"
                )
        return parent

    def _constrained_tree(
        self,
        net: Network,
        fabric: Fabric,
        dlid: int,
        weights: list[float],
        lane_cdg: dict[int, set[int]],
    ) -> tuple[dict[int, int], set[tuple[int, int]]] | None:
        """One destination tree whose CDG additions keep the lane acyclic.

        Returns ``(parent, committed dependency edges)`` or None when a
        terminal-hosting switch cannot be reached under the constraints.
        """
        dst = fabric.lidmap.node_of(dlid)
        dsw = net.attached_switch(dst)

        parent: dict[int, int] = {}
        deps: set[tuple[int, int]] = set()
        done: set[int] = set()
        dist: dict[int, tuple[int, float]] = {dsw: (0, 0.0)}
        heap: list[tuple[int, float, float, int, int]] = [(0, 0.0, 0.0, -1, dsw)]

        def dep_of(link_in: int, node: int) -> tuple[int, int] | None:
            """The dependency committing ``link_in`` as some switch's
            route, given ``node``'s already-fixed continuation."""
            out = parent.get(node)
            if out is None:
                return None  # node is the destination switch: chain ends
            out_link = net.link(out)
            if not net.is_switch(out_link.dst):
                return None  # ejection hop
            return (link_in, out)

        while heap:
            hops_u, w_u, _, plink, u = heapq.heappop(heap)
            if u in done:
                continue
            if plink >= 0:
                # Committing u's parent adds one dependency (its in-link
                # chained to the next hop's out-link); re-check against
                # everything committed since this entry was pushed.
                link = net.link(plink)
                d = dep_of(plink, link.dst)
                if d is not None and addition_creates_cycle(
                    lane_cdg, deps | {d}
                ):
                    continue  # forbidden turn; try another frontier entry
                parent[u] = plink
                if d is not None:
                    deps.add(d)
            done.add(u)
            for link in net.in_links(u):
                v = link.src
                if v in done or not net.is_switch(v):
                    continue
                cand_dep = dep_of(link.id, u)
                if cand_dep is not None and addition_creates_cycle(
                    lane_cdg, deps | {cand_dep}
                ):
                    continue
                cand = (hops_u + 1, w_u + float(weights[link.id]))
                if cand < dist.get(v, _INF):
                    dist[v] = cand
                heapq.heappush(
                    heap,
                    (cand[0], cand[1], float(weights[link.id]), link.id, v),
                )

        for sw in net.switches:
            if sw != dsw and sw not in parent and net.attached_terminals(sw):
                return None
        return parent, deps


def _escape_orientation(net: Network, root: int) -> dict[int, bool]:
    """Per-link "down" flags (away from the root) for the escape lane.

    BFS depth from the root with node-id tie-break gives every cable a
    strict orientation; the legal-turn set of that orientation is
    acyclic (the Up*/Down* theorem), which is what makes the escape lane
    unconditionally deadlock-free.
    """
    from collections import deque

    depth = {root: 0}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for link in net.out_links(u):
            v = link.dst
            if net.is_switch(v) and v not in depth:
                depth[v] = depth[u] + 1
                queue.append(v)
    missing = [s for s in net.switches if s not in depth]
    if missing:
        raise UnreachableError(
            f"switch graph is disconnected; {len(missing)} switches "
            f"unreachable from escape root {root}"
        )
    is_down: dict[int, bool] = {}
    for link in net.iter_links(enabled_only=False):
        if net.is_switch(link.src) and net.is_switch(link.dst):
            is_down[link.id] = (depth[link.dst], link.dst) > (
                depth[link.src], link.src
            )
    return is_down


def _cdg_size(adj: dict[int, set[int]]) -> int:
    return sum(len(v) for v in adj.values())
