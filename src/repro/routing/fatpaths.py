"""FatPaths-style layered multipath routing (Besta et al., arXiv:1906.10885).

FatPaths splits the fabric into *layers*: layer 0 is the full graph,
and every further layer removes a small, distinct subset of the
switch-to-switch cables, so its shortest paths are forced onto
different — largely edge-disjoint — routes.  Traffic is then sprayed
across layers, realising multipath on commodity destination-routed
hardware.

On InfiniBand the natural layer carrier is the LMC: with ``lmc = 2``
every terminal owns four LIDs, and this engine routes LID index ``j``
through layer ``j`` (the same trick PARX uses for its rule masks).  The
subnet manager's virtual-lane layering then packs the per-layer trees
into lanes; the engine sets
:attr:`~repro.routing.base.RoutingEngine.vl_group_by_lid_index` so
destinations are laid out layer-by-layer and each layer's trees cluster
onto the same lanes.

Layer masks are a deterministic hash partition over *all* cables,
including currently-dead ones — so the masks never move when a cable
fails, and an incremental per-destination recompute after a fabric
event reproduces a full sweep bit for bit
(``supports_incremental_resweep``).  When a layer's mask (plus real
faults) disconnects a host switch from some destination, that
destination LID falls back to the unmasked graph and the fabric gets a
note — the same footnote-7 fallback PARX uses.
"""

from __future__ import annotations

from typing import Collection

import numpy as np

from repro.core.errors import UnreachableError
from repro.ib.fabric import Fabric
from repro.routing.arrays import tree_core_batch
from repro.routing.base import (
    RoutingEngine,
    batched_sweep_enabled,
    column_tree,
    destination_block_width,
    destination_blocks,
    install_tree,
    install_tree_columns,
    parallel_route_columns,
)
from repro.routing.dijkstra import tree_to_destination
from repro.routing.fthx import LinkProfile, _fthx_weight_spec
from repro.topology.network import Network

#: Hash buckets per mask-carrying layer: each layer past the first
#: masks ``1 / (_BUCKET_FACTOR * (num_layers - 1))`` of the cables
#: (disjoint across layers).  Sized so per-layer stretch — and with it
#: the virtual-lane bill — stays modest while the layers' path sets
#: still separate: on the 672-node t2hx, 6 leaves the four layers at
#: five combined lanes, comfortable headroom under the 8-VL QDR budget
#: for the extra detours real faults add.
_BUCKET_FACTOR = 6


def _cable_bucket(rep_id: int, buckets: int) -> int:
    """Deterministic bucket of one cable (splitmix64 of the rep id)."""
    h = (rep_id * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 31
    h = (h * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 29
    return h % buckets


def layer_masks(net: Network, num_layers: int) -> list[frozenset[int]]:
    """The per-layer masked-link sets.

    Layer 0 is always unmasked; layers ``1 .. num_layers - 1`` each mask
    a disjoint hashed subset of the switch cables.  Hashing runs over
    all cables *including disabled ones* so the partition is a pure
    function of the built topology, invariant under faults.
    """
    masks: list[frozenset[int]] = [frozenset()]
    if num_layers <= 1:
        return masks
    buckets = _BUCKET_FACTOR * (num_layers - 1)
    per_layer: list[set[int]] = [set() for _ in range(num_layers - 1)]
    for link in net.iter_links(enabled_only=False):
        if not (net.is_switch(link.src) and net.is_switch(link.dst)):
            continue
        b = _cable_bucket(min(link.id, link.reverse_id), buckets)
        if b < num_layers - 1:
            per_layer[b].add(link.id)
    masks.extend(frozenset(s) for s in per_layer)
    return masks


class _Sweep:
    """Per-sweep context: layer masks plus the shared link profile.

    Rebuilt from the current topology on every (re-)sweep, so a full
    sweep and an incremental recompute see identical masks and weights.
    The weight metric is fthx's dimension-disciplined
    :class:`~repro.routing.fthx.LinkProfile`, with the dimension-order
    rotation pinned per *layer* instead of per LID: each layer's trees
    then share one correction order (lane-friendly) while different
    layers route genuinely differently even before the masks bite.
    """

    def __init__(self, net: Network, lids_per_port: int) -> None:
        self.masks = layer_masks(net, lids_per_port)
        self.profile = LinkProfile(net)

    def weights_for(self, dest_switch: int, dlid: int, layer: int) -> list[float]:
        return self.profile.weights_for(dest_switch, dlid, rotation=layer)


class FatPathsRouting(RoutingEngine):
    """Layered near-edge-disjoint shortest paths over the LMC LIDs."""

    name = "fatpaths"
    provides_deadlock_freedom = True  # via the SM's VL layering
    # Masks hash the built topology (fault-invariant) and weights hash
    # (link, LID): nothing couples destinations, so per-destination
    # recomputes reproduce a full sweep bit for bit.
    supports_incremental_resweep = True
    # The same independence admits block routing: each block is split by
    # layer, every layer's columns route together over its masked view,
    # and mask-disconnected columns take the layer-0 fallback exactly as
    # the sequential path would (same notes, same order).
    supports_batched_sweep = True
    # Layer membership is a pure function of (LID index, masks) and the
    # weights are fthx's declarative profile with per-layer rotations,
    # so the pool shards the sweep per layer x destination block; the
    # layer-0 fallback scan runs parent-side in LID order, reproducing
    # the sequential notes exactly.
    parallel_sweep_safe = True
    #: Four LIDs per terminal = four layers.  Works at any LMC — one
    #: layer per LID index — but the FatPaths sweet spot needs k > 1.
    sm_defaults = {"lmc": 2}
    #: Group destinations by LID index during VL layering, so each
    #: layer's trees pack onto the same lanes before the next layer's
    #: differently-shaped trees open new ones.
    vl_group_by_lid_index = True

    def compute(self, fabric: Fabric) -> None:
        net = fabric.net
        dlids = fabric.lidmap.terminal_lids(net)
        if batched_sweep_enabled():
            if parallel_route_columns(self, fabric, dlids):
                return
            sweep = _Sweep(net, fabric.lidmap.lids_per_port)
            for block in destination_blocks(fabric, dlids):
                self._route_block(fabric, block, sweep)
            return
        sweep = _Sweep(net, fabric.lidmap.lids_per_port)
        for dlid in dlids:
            self._route_dlid(fabric, dlid, sweep)

    def recompute_destinations(
        self, fabric: Fabric, dlids: Collection[int]
    ) -> None:
        net = fabric.net
        ordered = sorted(dlids)
        if batched_sweep_enabled():

            def reset_all() -> None:
                # Reset only once the pool has the full result in hand,
                # so a pool failure leaves the old tables intact for the
                # serial fallback below.
                for dlid in ordered:
                    self._reset_column(fabric, dlid)

            if parallel_route_columns(
                self, fabric, ordered, before_install=reset_all
            ):
                return
            sweep = _Sweep(net, fabric.lidmap.lids_per_port)
            for block in destination_blocks(fabric, ordered):
                for dlid in block:
                    self._reset_column(fabric, dlid)
                self._route_block(fabric, block, sweep)
            return
        sweep = _Sweep(net, fabric.lidmap.lids_per_port)
        for dlid in ordered:
            self._reset_column(fabric, dlid)
            self._route_dlid(fabric, dlid, sweep)

    @staticmethod
    def _reset_column(fabric: Fabric, dlid: int) -> None:
        net = fabric.net
        fabric.tables.clear_column(dlid)
        t = fabric.lidmap.node_of(dlid)
        down = net.terminal_uplink(t).reverse_id
        fabric.set_route(net.attached_switch(t), dlid, down)

    def _sweep_job(self, fabric: Fabric, dlids: list[int]):
        from repro.core.parallel import TreeJob, TreeShard

        net = fabric.net
        graph = net.switch_graph()
        sweep = _Sweep(net, fabric.lidmap.lids_per_port)
        lidmap = fabric.lidmap
        dsws = [net.attached_switch(lidmap.node_of(d)) for d in dlids]
        layers = [lidmap.index_of(d) % len(sweep.masks) for d in dlids]
        roots = graph.index[np.asarray(dsws, dtype=np.int64)]
        # One shard per layer: the layer's columns route together over
        # its masked view, exactly as the serial block loop groups them.
        layer_arr = np.asarray(layers, dtype=np.int64)
        shards = [
            TreeShard(
                graph=graph.masked(sweep.masks[layer]),
                cols=np.flatnonzero(layer_arr == layer),
            )
            for layer in sorted(set(layers))
        ]
        return TreeJob(
            num_switches=graph.num_switches,
            num_links=len(net.links),
            roots=roots,
            dest_switches=dsws,
            weights=_fthx_weight_spec(
                sweep.profile, dsws, dlids, rotations=layers
            ),
            shards=shards,
            block_cols=destination_block_width(fabric),
            extra=(sweep, layers),
        )

    def _install_sweep(
        self,
        fabric: Fabric,
        dlids: list[int],
        job,
        plid: np.ndarray,
    ) -> None:
        sweep, layers = job.extra
        net = fabric.net
        graph = net.switch_graph()
        host = graph.host_switches
        # Layer-0 fallback for mask-disconnected destinations, detected
        # and noted in global LID order like the serial sweep (its
        # per-block scans visit the same j's in the same order).
        for j, dlid in enumerate(dlids):
            layer = layers[j]
            if not layer:
                continue
            missing = host[plid[host, j] < 0]
            if not (missing != job.roots[j]).any():
                continue
            weights = np.asarray(
                sweep.weights_for(job.dest_switches[j], dlid, layer),
                dtype=np.float64,
            )[:, None]
            sub, _ = tree_core_batch(graph, job.roots[j : j + 1], weights)
            plid[:, j] = sub[:, 0]
            fabric.notes.append(
                f"fatpaths: fallback to layer 0 for lid {dlid} "
                f"(layer {layer} mask disconnects it)"
            )

        def on_unreachable(j: int, dlid: int, dsw: int) -> None:
            parent, _hops = column_tree(graph, plid[:, j])
            self._check_reach(net, parent, dsw, dlid)

        install_tree_columns(
            fabric, dlids, job.dest_switches, plid,
            on_unreachable=on_unreachable,
        )

    def _route_block(
        self, fabric: Fabric, block: list[int], sweep: "_Sweep"
    ) -> None:
        net = fabric.net
        graph = net.switch_graph()
        lidmap = fabric.lidmap
        dsws = [net.attached_switch(lidmap.node_of(d)) for d in block]
        layers = [lidmap.index_of(d) % len(sweep.masks) for d in block]
        roots = graph.index[np.asarray(dsws, dtype=np.int64)]
        weights = sweep.profile.weights_block(dsws, block, rotations=layers)
        plid = np.full((graph.num_switches, len(block)), -1, dtype=np.int64)
        for layer in sorted(set(layers)):
            js = [j for j, lay in enumerate(layers) if lay == layer]
            view = graph.masked(sweep.masks[layer])
            sub, _ = tree_core_batch(view, roots[js], weights[:, js])
            plid[:, js] = sub
        # Layer-0 fallback for mask-disconnected destinations, detected
        # and noted in LID order like the sequential loop.
        host = graph.host_switches
        for j, dlid in enumerate(block):
            layer = layers[j]
            if not layer:
                continue
            missing = host[plid[host, j] < 0]
            if not (missing != roots[j]).any():
                continue
            sub, _ = tree_core_batch(graph, roots[j : j + 1], weights[:, j : j + 1])
            plid[:, j] = sub[:, 0]
            fabric.notes.append(
                f"fatpaths: fallback to layer 0 for lid {dlid} "
                f"(layer {layer} mask disconnects it)"
            )

        def on_unreachable(j: int, dlid: int, dsw: int) -> None:
            parent, _hops = column_tree(graph, plid[:, j])
            self._check_reach(net, parent, dsw, dlid)

        install_tree_columns(
            fabric, block, dsws, plid, on_unreachable=on_unreachable
        )

    def _route_dlid(self, fabric: Fabric, dlid: int, sweep: "_Sweep") -> None:
        net = fabric.net
        dst = fabric.lidmap.node_of(dlid)
        dsw = net.attached_switch(dst)
        layer = fabric.lidmap.index_of(dlid) % len(sweep.masks)
        weights = sweep.weights_for(dsw, dlid, layer)
        parent, hops = tree_to_destination(
            net, dsw, weights, sweep.masks[layer]
        )
        if layer and not _covers_host_switches(net, parent, dsw):
            parent, hops = tree_to_destination(net, dsw, weights)
            fabric.notes.append(
                f"fatpaths: fallback to layer 0 for lid {dlid} "
                f"(layer {layer} mask disconnects it)"
            )
        self._check_reach(net, parent, dsw, dlid)
        install_tree(fabric, dlid, parent)

    @staticmethod
    def _check_reach(net: Network, parent: dict, dsw: int, dlid: int) -> None:
        graph = net.switch_graph()
        for u in graph.host_switches.tolist():
            sw = graph.switches[u]
            if sw != dsw and sw not in parent:
                raise UnreachableError(
                    f"switch {sw} cannot reach destination lid {dlid}"
                )


def _covers_host_switches(net: Network, parent: dict, dsw: int) -> bool:
    """Does the masked tree reach every switch that hosts terminals?"""
    graph = net.switch_graph()
    for u in graph.host_switches.tolist():
        sw = graph.switches[u]
        if sw != dsw and sw not in parent:
            return False
    return True
