"""Array-backed core of the routing sweep.

The sweep's inner loop — one modified Dijkstra per destination LID —
used to run over :class:`~repro.topology.network.Link` objects through
``Network.in_links``, paying an allocation and several attribute/dict
lookups per relaxed edge.  :func:`tree_core` runs the same algorithm
over the flat CSR arrays of a
:class:`~repro.topology.network.SwitchGraph`, with dense integer state
instead of dicts and a heap that only receives *strictly improving*
entries (the reference pushes every equal-cost candidate and lets the
pop order arbitrate, which bloats the heap with duplicates).

Why the output is bit-identical to the reference
(``reference_tree_to_destination`` in :mod:`repro.routing.dijkstra`):

* The reference's winner for node ``v`` is the heap-minimal candidate
  tuple ``(hops, weight_sum, parent_link_weight, parent_link_id)`` over
  all relaxations of ``v`` — every candidate tying on ``(hops, weight)``
  is pushed, and the first pop settles the full-tuple minimum.
* Here the running per-node best of that same 4-tuple is kept densely;
  each strict improvement is pushed, so pushes for a node are strictly
  decreasing and the first pop is again the full-tuple minimum.  Both
  sides therefore settle nodes in the same order (dense switch index is
  monotone in node id, so even total ties order identically) and relax
  with the same ``w_u + weight[link]`` float expressions — the sums are
  the same IEEE operations in the same order, hence identical bits.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Protocol, Sequence

import numpy as np

#: Hop count marking an unreached switch in the dense arrays.
UNREACHED_HOPS = 1 << 30


class GraphView(Protocol):
    """What :func:`tree_core` needs: a (possibly masked) in-link CSR."""

    num_switches: int
    in_ptr_list: list[int]
    in_src_list: list[int]
    in_link_list: list[int]


def accumulate_column_loads(
    matrix: np.ndarray,
    graph: "DenseGraphView",
    dest_cols: Iterable[int],
    dest_switch_rows: Iterable[int],
    loads: np.ndarray,
) -> np.ndarray:
    """Per-link table-walk traversal counts over destination columns.

    The frontier-wave Kahn pass shared by the static load estimator
    (:mod:`repro.analysis.load`, FAB011) and the what-if vulnerability
    verifier (:mod:`repro.analysis.whatif`): for each destination column
    of the dense next-hop ``matrix``, every switch is seeded with its
    attached-terminal count (minus one at the destination's own switch —
    a node never sends to itself), and the per-destination functional
    graph drains in topological waves, accumulating how many (source
    terminal, destination) walks traverse each link into ``loads``
    (indexed by link id, mutated in place and returned).

    Switches on a forwarding cycle never reach in-degree 0 and are
    skipped; black-holed walks stop where they die.  The drain order
    never affects the totals — every predecessor of a switch settles
    before it.

    Parameters
    ----------
    matrix:
        ``(S, D)`` dense next-hop matrix (``ForwardingTables.dense``).
    graph:
        Current ``Network.switch_graph()`` (judges link liveness).
    dest_cols, dest_switch_rows:
        Parallel iterables: the matrix column of each destination LID
        and the dense switch index the destination terminal attaches to.
    loads:
        ``(num_links,)`` int64 accumulator, mutated in place.
    """
    n = graph.num_switches
    link_dst_index = graph.link_dst_index
    link_enabled = graph.link_enabled
    attached = graph.attached_counts.astype(np.int64)

    for col, droot in zip(dest_cols, dest_switch_rows):
        column = matrix[:, col]
        # Out-of-range ids (corrupt "unknown link" entries) carry no
        # load, same as absent entries; clamping keeps gathers in bounds.
        valid = (column >= 0) & (column < len(link_enabled))
        safe = np.where(valid, column, 0)
        # A hop exists when the entry's link is enabled and lands on a
        # switch (ejection entries and black holes have no successor).
        succ = link_dst_index[safe]
        has_hop = valid & link_enabled[safe] & (succ >= 0)
        succ = np.where(has_hop, succ, -1)
        indeg = np.bincount(succ[has_hop], minlength=n)

        total = attached.copy()
        total[droot] -= 1

        frontier = np.flatnonzero(indeg == 0)
        while frontier.size:
            f = frontier[succ[frontier] >= 0]
            if not f.size:
                break
            amounts = total[f]
            np.add.at(loads, column[f], amounts)
            np.add.at(total, succ[f], amounts)
            np.add.at(indeg, succ[f], -1)
            nxt = np.unique(succ[f])
            frontier = nxt[indeg[nxt] == 0]
    return loads


class DenseGraphView(Protocol):
    """What :func:`accumulate_column_loads` needs from a switch graph."""

    num_switches: int
    link_dst_index: np.ndarray
    link_enabled: np.ndarray
    attached_counts: np.ndarray


def tree_core(
    graph: GraphView,
    root: int,
    weights: Sequence[float],
) -> tuple[list[int], list[int], list[int]]:
    """Destination tree toward dense switch index ``root``.

    Parameters
    ----------
    graph:
        CSR view (already masked, if the engine masks links).
    root:
        Dense index of the destination's switch.
    weights:
        Per-link-id weights as a plain Python sequence (``list`` beats
        numpy scalar extraction in this loop by ~3x).

    Returns
    -------
    (parent_link, hops, order):
        Dense arrays over switch index: the chosen out-link id (-1 for
        the root and unreached switches) and hop count
        (:data:`UNREACHED_HOPS` when unreached), plus the settlement
        order — the sequence pops settled in, which downstream load
        accumulation relies on for float-exact reproduction.
    """
    n = graph.num_switches
    hops = [UNREACHED_HOPS] * n
    wsum = [0.0] * n
    plw = [0.0] * n
    plid = [-1] * n
    parent = [-1] * n
    done = [False] * n
    order: list[int] = []
    hops[root] = 0
    heap: list[tuple[int, float, float, int, int]] = [(0, 0.0, 0.0, -1, root)]
    ptr, src, lnk = graph.in_ptr_list, graph.in_src_list, graph.in_link_list
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        h_u, w_u, _, pl, u = pop(heap)
        if done[u]:
            continue
        done[u] = True
        parent[u] = pl
        order.append(u)
        h_v = h_u + 1
        for k in range(ptr[u], ptr[u + 1]):
            v = src[k]
            if done[v]:
                continue
            lid = lnk[k]
            wt = weights[lid]
            h0 = hops[v]
            if h_v < h0:
                better = True
            elif h_v > h0:
                better = False
            else:
                w_v = w_u + wt
                w0 = wsum[v]
                if w_v < w0:
                    better = True
                elif w_v > w0:
                    better = False
                else:
                    p0 = plw[v]
                    if wt < p0:
                        better = True
                    elif wt > p0:
                        better = False
                    else:
                        better = lid < plid[v] or plid[v] < 0
            if better:
                hops[v] = h_v
                wsum[v] = w_u + wt
                plw[v] = wt
                plid[v] = lid
                push(heap, (h_v, w_u + wt, wt, lid, v))
    return parent, hops, order
