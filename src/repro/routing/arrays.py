"""Array-backed core of the routing sweep.

The sweep's inner loop — one modified Dijkstra per destination LID —
used to run over :class:`~repro.topology.network.Link` objects through
``Network.in_links``, paying an allocation and several attribute/dict
lookups per relaxed edge.  :func:`tree_core` runs the same algorithm
over the flat CSR arrays of a
:class:`~repro.topology.network.SwitchGraph`, with dense integer state
instead of dicts and a heap that only receives *strictly improving*
entries (the reference pushes every equal-cost candidate and lets the
pop order arbitrate, which bloats the heap with duplicates).

Why the output is bit-identical to the reference
(``reference_tree_to_destination`` in :mod:`repro.routing.dijkstra`):

* The reference's winner for node ``v`` is the heap-minimal candidate
  tuple ``(hops, weight_sum, parent_link_weight, parent_link_id)`` over
  all relaxations of ``v`` — every candidate tying on ``(hops, weight)``
  is pushed, and the first pop settles the full-tuple minimum.
* Here the running per-node best of that same 4-tuple is kept densely;
  each strict improvement is pushed, so pushes for a node are strictly
  decreasing and the first pop is again the full-tuple minimum.  Both
  sides therefore settle nodes in the same order (dense switch index is
  monotone in node id, so even total ties order identically) and relax
  with the same ``w_u + weight[link]`` float expressions — the sums are
  the same IEEE operations in the same order, hence identical bits.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Protocol, Sequence

import numpy as np

#: Hop count marking an unreached switch in the dense arrays.
UNREACHED_HOPS = 1 << 30


class GraphView(Protocol):
    """What :func:`tree_core` needs: a (possibly masked) in-link CSR."""

    num_switches: int
    in_ptr_list: list[int]
    in_src_list: list[int]
    in_link_list: list[int]


class BatchGraphView(Protocol):
    """What :func:`tree_core_batch` needs: the same CSR, as numpy arrays."""

    num_switches: int
    in_ptr: np.ndarray
    in_src: np.ndarray
    in_link: np.ndarray


def accumulate_column_loads(
    matrix: np.ndarray,
    graph: "DenseGraphView",
    dest_cols: Iterable[int],
    dest_switch_rows: Iterable[int],
    loads: np.ndarray,
) -> np.ndarray:
    """Per-link table-walk traversal counts over destination columns.

    The frontier-wave Kahn pass shared by the static load estimator
    (:mod:`repro.analysis.load`, FAB011) and the what-if vulnerability
    verifier (:mod:`repro.analysis.whatif`): for each destination column
    of the dense next-hop ``matrix``, every switch is seeded with its
    attached-terminal count (minus one at the destination's own switch —
    a node never sends to itself), and the per-destination functional
    graph drains in topological waves, accumulating how many (source
    terminal, destination) walks traverse each link into ``loads``
    (indexed by link id, mutated in place and returned).

    Switches on a forwarding cycle never reach in-degree 0 and are
    skipped; black-holed walks stop where they die.  The drain order
    never affects the totals — every predecessor of a switch settles
    before it.

    Parameters
    ----------
    matrix:
        ``(S, D)`` dense next-hop matrix (``ForwardingTables.dense``).
    graph:
        Current ``Network.switch_graph()`` (judges link liveness).
    dest_cols, dest_switch_rows:
        Parallel iterables: the matrix column of each destination LID
        and the dense switch index the destination terminal attaches to.
    loads:
        ``(num_links,)`` int64 accumulator, mutated in place.
    """
    n = graph.num_switches
    link_dst_index = graph.link_dst_index
    link_enabled = graph.link_enabled
    attached = graph.attached_counts.astype(np.int64)

    for col, droot in zip(dest_cols, dest_switch_rows):
        column = matrix[:, col]
        # Out-of-range ids (corrupt "unknown link" entries) carry no
        # load, same as absent entries; clamping keeps gathers in bounds.
        valid = (column >= 0) & (column < len(link_enabled))
        safe = np.where(valid, column, 0)
        # A hop exists when the entry's link is enabled and lands on a
        # switch (ejection entries and black holes have no successor).
        succ = link_dst_index[safe]
        has_hop = valid & link_enabled[safe] & (succ >= 0)
        succ = np.where(has_hop, succ, -1)
        indeg = np.bincount(succ[has_hop], minlength=n)

        total = attached.copy()
        total[droot] -= 1

        frontier = np.flatnonzero(indeg == 0)
        while frontier.size:
            f = frontier[succ[frontier] >= 0]
            if not f.size:
                break
            amounts = total[f]
            np.add.at(loads, column[f], amounts)
            np.add.at(total, succ[f], amounts)
            np.add.at(indeg, succ[f], -1)
            nxt = np.unique(succ[f])
            frontier = nxt[indeg[nxt] == 0]
    return loads


class DenseGraphView(Protocol):
    """What :func:`accumulate_column_loads` needs from a switch graph."""

    num_switches: int
    link_dst_index: np.ndarray
    link_enabled: np.ndarray
    attached_counts: np.ndarray


def incidence_scan_block(
    dense_block: np.ndarray,
    cable_of_link: np.ndarray,
    col_offset: int,
    n_cols: int,
    num_links: int,
) -> tuple[np.ndarray, int]:
    """Cable -> destination incidence of one dense column block.

    One block of the what-if verifier's incidence scan
    (:mod:`repro.analysis.whatif`), shared by its serial column loop and
    the pool workers' sharded scan: returns the sorted unique
    ``cable * n_cols + global_column`` keys of the block plus the count
    of distinct columns holding any entry.  Column ranges partition
    across blocks, so the union of per-block key sets and the sum of
    per-block column counts reproduce a full-matrix scan exactly.
    """
    b_rows, b_cols = np.nonzero(dense_block >= 0)
    ndests = int(np.unique(b_cols).size)
    links = dense_block[b_rows, b_cols].astype(np.int64)
    cols = b_cols.astype(np.int64) + col_offset
    on_cable = cable_of_link[np.clip(links, 0, num_links - 1)]
    on_cable[(links < 0) | (links >= num_links)] = -1
    hit = on_cable >= 0
    keys = np.unique(on_cable[hit] * n_cols + cols[hit])
    return keys, ndests


def tree_core(
    graph: GraphView,
    root: int,
    weights: Sequence[float],
) -> tuple[list[int], list[int], list[int]]:
    """Destination tree toward dense switch index ``root``.

    Parameters
    ----------
    graph:
        CSR view (already masked, if the engine masks links).
    root:
        Dense index of the destination's switch.
    weights:
        Per-link-id weights as a plain Python sequence (``list`` beats
        numpy scalar extraction in this loop by ~3x).

    Returns
    -------
    (parent_link, hops, order):
        Dense arrays over switch index: the chosen out-link id (-1 for
        the root and unreached switches) and hop count
        (:data:`UNREACHED_HOPS` when unreached), plus the settlement
        order — the sequence pops settled in, which downstream load
        accumulation relies on for float-exact reproduction.
    """
    n = graph.num_switches
    hops = [UNREACHED_HOPS] * n
    wsum = [0.0] * n
    plw = [0.0] * n
    plid = [-1] * n
    parent = [-1] * n
    done = [False] * n
    order: list[int] = []
    hops[root] = 0
    heap: list[tuple[int, float, float, int, int]] = [(0, 0.0, 0.0, -1, root)]
    ptr, src, lnk = graph.in_ptr_list, graph.in_src_list, graph.in_link_list
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        h_u, w_u, _, pl, u = pop(heap)
        if done[u]:
            continue
        done[u] = True
        parent[u] = pl
        order.append(u)
        h_v = h_u + 1
        for k in range(ptr[u], ptr[u + 1]):
            v = src[k]
            if done[v]:
                continue
            lid = lnk[k]
            wt = weights[lid]
            h0 = hops[v]
            if h_v < h0:
                better = True
            elif h_v > h0:
                better = False
            else:
                w_v = w_u + wt
                w0 = wsum[v]
                if w_v < w0:
                    better = True
                elif w_v > w0:
                    better = False
                else:
                    p0 = plw[v]
                    if wt < p0:
                        better = True
                    elif wt > p0:
                        better = False
                    else:
                        better = lid < plid[v] or plid[v] < 0
            if better:
                hops[v] = h_v
                wsum[v] = w_u + wt
                plw[v] = wt
                plid[v] = lid
                push(heap, (h_v, w_u + wt, wt, lid, v))
    return parent, hops, order


def tree_core_batch(
    graph: BatchGraphView,
    roots: Sequence[int],
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Destination trees toward K roots at once — bit-equal to
    :func:`tree_core` run per column.

    Instead of one heap per destination, the K columns advance together
    in hop-bucketed frontier waves over a ``(V, K)`` distance matrix:
    because hops dominate the lexicographic metric, every switch settled
    at hop ``h + 1`` is reached from a switch settled at hop ``h``, so
    wave ``h`` expands the whole hop-``h`` frontier of every column in a
    handful of flat numpy gathers and a single
    ``lexsort((link, link_weight, weight_sum, column))`` reduction that
    picks each (switch, column) cell's winner.

    Bit-identity with the sequential kernel: a cell's final
    ``(hops, weight_sum, parent_link_weight, parent_link_id)`` is in
    both kernels the lexicographic minimum over all in-edges from the
    previous hop level, and the candidate ``weight_sum`` is the same
    single IEEE addition ``wsum[u] + weights[link]`` on identical
    operands — link ids are unique per candidate set, so the minimum is
    unique and the reduction order cannot matter.

    Parameters
    ----------
    graph:
        CSR view (already masked, if the engine masks links), with the
        numpy mirrors ``in_ptr``/``in_src``/``in_link``.
    roots:
        Dense switch index of each destination column (duplicates fine).
    weights:
        Per-link-id weights: ``(num_links,)`` shared by every column
        (minhop), or ``(num_links, K)`` with one column per destination.

    Returns
    -------
    (parent_link, hops):
        ``(V, K)`` int64 arrays over (dense switch index, column): the
        chosen out-link id (-1 for roots and unreached switches) and
        the hop count (:data:`UNREACHED_HOPS` when unreached).  No
        settlement order is produced — only the SSSP family's load
        feedback needs one, and it cannot batch.
    """
    n = graph.num_switches
    root_arr = np.asarray(roots, dtype=np.int64)
    k = root_arr.size
    wts = np.asarray(weights, dtype=np.float64)
    in_ptr, in_src, in_link = graph.in_ptr, graph.in_src, graph.in_link
    per_column = wts.ndim == 2

    hops = np.full((n, k), UNREACHED_HOPS, dtype=np.int64)
    wsum = np.zeros((n, k), dtype=np.float64)
    plid = np.full((n, k), -1, dtype=np.int64)
    if k == 0 or n == 0:
        return plid, hops
    cols = np.arange(k, dtype=np.int64)
    hops[root_arr, cols] = 0
    # Reached-cell count per column: once a column reaches every switch
    # its frontier entries stop expanding — on low-diameter graphs this
    # skips the final wave, whose candidate gather would be the largest
    # of the sweep and yield nothing.
    col_settled = np.bincount(cols, minlength=k)
    f_node, f_col = root_arr, cols
    h = 0
    while f_node.size:
        live_col = col_settled[f_col] < n
        if not live_col.all():
            f_node = f_node[live_col]
            f_col = f_col[live_col]
            if not f_node.size:
                break
        starts = in_ptr[f_node]
        counts = in_ptr[f_node + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Flat CSR expansion: candidate j belongs to frontier entry
        # reps[j] and reads adjacency slot idx[j].
        reps = np.repeat(np.arange(f_node.size, dtype=np.int64), counts)
        cum = np.zeros(f_node.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=cum[1:])
        idx = np.arange(total, dtype=np.int64) + np.repeat(starts - cum, counts)
        cand_v = in_src[idx]
        cand_c = f_col[reps]
        live = hops[cand_v, cand_c] == UNREACHED_HOPS
        if not live.any():
            break
        cand_v = cand_v[live]
        cand_c = cand_c[live]
        cand_l = in_link[idx[live]]
        src_w = wsum[f_node, f_col][reps[live]]
        wt = wts[cand_l, cand_c] if per_column else wts[cand_l]
        w = src_w + wt
        # One winner per (switch, column) cell: lexicographic minimum of
        # (weight_sum, link_weight, link_id), keys reversed for lexsort.
        vk = cand_v * k + cand_c
        order = np.lexsort((cand_l, wt, w, vk))
        vk_sorted = vk[order]
        first = np.ones(vk_sorted.size, dtype=bool)
        first[1:] = vk_sorted[1:] != vk_sorted[:-1]
        win = order[first]
        wn, wc = cand_v[win], cand_c[win]
        h += 1
        hops[wn, wc] = h
        wsum[wn, wc] = w[win]
        plid[wn, wc] = cand_l[win]
        col_settled += np.bincount(wc, minlength=k)
        f_node, f_col = wn, wc
    return plid, hops
