"""DAL-style adaptive routing stand-in (Ahn et al.'s DAL / UGAL family).

The HyperX was designed for Dimensionally-Adaptive, Load-balanced
routing; the paper's QDR hardware cannot do it ("our dated QDR-based
InfiniBand hardware ... entirely lacks adaptive routing capabilities",
section 2.3), which is the whole reason PARX exists.  For the ablation
benchmarks we still want the "what future hardware would do" upper
bound, so :class:`DalSelector` supplies per-flow *candidate* paths —
minimal dimension-order routes plus Valiant-style one-hop-per-dimension
detours — and the flow simulator's adaptive mode picks the least
congested candidate at injection time (UGAL's decision, made once per
flow because we model flows, not packets).
"""

from __future__ import annotations

import itertools

from repro.core.errors import RoutingError
from repro.core.rng import make_rng
from repro.topology.network import Network


class DalSelector:
    """Candidate-path provider for adaptive flow routing on HyperX.

    Parameters
    ----------
    net:
        A HyperX network (switches must carry lattice ``coord`` meta).
    num_detours:
        Valiant-style non-minimal candidates per pair, each through a
        random intermediate switch (seeded for reproducibility).
    """

    def __init__(self, net: Network, num_detours: int = 2, seed: int = 0) -> None:
        self.net = net
        self.num_detours = num_detours
        self._rng = make_rng(seed)
        self._switch_by_coord: dict[tuple[int, ...], int] = {}
        for sw in net.switches:
            coord = net.node_meta(sw).get("coord")
            if coord is None:
                raise RoutingError(
                    f"DAL needs lattice coordinates on switches; switch {sw} "
                    "has none (is this really a HyperX-family network?)"
                )
            self._switch_by_coord[tuple(coord)] = sw
        if not self._switch_by_coord:
            raise RoutingError("DAL needs at least one switch")

    def candidates(self, src: int, dst: int) -> list[list[int]]:
        """Candidate link-id paths between two terminals.

        Minimal candidates: every dimension ordering (XY and YX in 2-D).
        Non-minimal: via random intermediate switches, routed minimally
        on both legs (Valiant).  Duplicates are dropped.
        """
        if src == dst:
            return [[]]
        net = self.net
        ssw = net.attached_switch(src)
        dsw = net.attached_switch(dst)
        up = net.terminal_uplink(src).id
        down = net.terminal_uplink(dst).reverse_id

        seen: set[tuple[int, ...]] = set()
        out: list[list[int]] = []

        def add(switch_path: list[int] | None) -> None:
            if switch_path is None:
                return
            full = [up, *switch_path, down]
            key = tuple(full)
            if key not in seen:
                seen.add(key)
                out.append(full)

        for order in itertools.permutations(range(self._num_dims())):
            add(self._dimension_order_path(ssw, dsw, order))
        coords = list(self._switch_by_coord)
        for _ in range(self.num_detours):
            mid = self._switch_by_coord[
                coords[int(self._rng.integers(len(coords)))]
            ]
            if mid in (ssw, dsw):
                continue
            leg1 = self._dimension_order_path(ssw, mid, None)
            leg2 = self._dimension_order_path(mid, dsw, None)
            if leg1 is not None and leg2 is not None:
                add(leg1 + leg2)
        if not out:
            raise RoutingError(f"no DAL candidate path from {src} to {dst}")
        return out

    # --- helpers -------------------------------------------------------------
    def _num_dims(self) -> int:
        return len(next(iter(self._switch_by_coord)))

    def _dimension_order_path(
        self, ssw: int, dsw: int, order: tuple[int, ...] | None
    ) -> list[int] | None:
        """Minimal switch path correcting one dimension at a time.

        Returns None when a needed direct link is disabled (faults); the
        adaptive layer just skips that candidate.
        """
        if ssw == dsw:
            return []
        net = self.net
        here = tuple(net.node_meta(ssw)["coord"])
        target = tuple(net.node_meta(dsw)["coord"])
        dims = order if order is not None else tuple(range(len(here)))
        path: list[int] = []
        cur_sw = ssw
        for d in dims:
            if here[d] == target[d]:
                continue
            nxt = here[:d] + (target[d],) + here[d + 1 :]
            nxt_sw = self._switch_by_coord[nxt]
            links = net.links_between(cur_sw, nxt_sw)
            if not links:
                return None
            path.append(links[0].id)
            here, cur_sw = nxt, nxt_sw
        return path if here == target else None
