"""Valiant's oblivious routing (VAL) as a static InfiniBand engine.

Section 6: "The realistic choice for HyperX are adaptive routings, such
as Valiant's algorithm (VAL) or UGAL".  VAL trades bandwidth guarantees
for worst-case robustness by always routing via a random intermediate,
halving best-case throughput but bounding adversarial loss.

Deterministic IB forwarding cannot express per-packet randomness, but
it *can* express per-destination randomness the same way PARX expresses
detours: give each destination LID a randomly drawn intermediate switch
and compose two shortest-path trees —

* switches on the intermediate's minimal path to the destination
  forward along that path (the "second leg"),
* every other switch forwards minimally *toward the intermediate*
  (the "first leg").

A walk follows leg one until it first touches the second leg's spine,
then rides it to the destination; the composed table is still one
in-tree per destination, so it is loop-free by construction and the
subnet manager's virtual-lane layering restores deadlock freedom.  With
LMC > 0 every LID of a port draws an independent intermediate and the
bfo PML's round-robin spreads a connection's messages across them,
restoring much of true VAL's path diversity.

Lane cost: the detoured trees create many more channel dependencies
than minimal routing, so on dense low-radix topologies (small tori in
particular) the subnet manager's layering can exceed QDR's 8 lanes and
refuse with :class:`~repro.core.errors.DeadlockError` — a clean
refusal, never a deadlock.  Raise ``OpenSM(max_vls=...)`` or use Nue's
fixed-budget construction where the budget is hard.
"""

from __future__ import annotations


from repro.core.errors import UnreachableError
from repro.core.rng import make_rng
from repro.ib.fabric import Fabric
from repro.routing.base import RoutingEngine
from repro.routing.dijkstra import tree_to_destination


class ValiantRouting(RoutingEngine):
    """Static Valiant: per-LID random-intermediate composed trees."""

    name = "valiant"
    provides_deadlock_freedom = True

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def compute(self, fabric: Fabric) -> None:
        net = fabric.net
        rng = make_rng(self.seed)
        switches = net.switches
        weights = [1.0] * len(net.links)

        for dlid in fabric.lidmap.terminal_lids(net):
            dst = fabric.lidmap.node_of(dlid)
            dsw = net.attached_switch(dst)
            mid = switches[int(rng.integers(len(switches)))]

            to_dst, _ = tree_to_destination(net, dsw, weights)
            to_mid, _ = tree_to_destination(net, mid, weights)

            # The second leg's spine: mid -> ... -> dsw along to_dst.
            spine: set[int] = {dsw}
            here = mid
            while here != dsw:
                link_id = to_dst.get(here)
                if link_id is None:
                    raise UnreachableError(
                        f"intermediate {mid} cannot reach switch {dsw}"
                    )
                spine.add(here)
                here = net.link(link_id).dst

            for sw in switches:
                if sw == dsw:
                    continue
                if sw in spine:
                    fabric.set_route(sw, dlid, to_dst[sw])
                elif sw in to_mid:
                    fabric.set_route(sw, dlid, to_mid[sw])
                elif net.attached_terminals(sw):
                    raise UnreachableError(
                        f"switch {sw} cannot reach intermediate {mid}"
                    )

            # Balance later destinations away from this tree's links.
            for link_id in to_dst.values():
                weights[link_id] += 0.05
