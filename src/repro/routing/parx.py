"""PARX: Pattern-Aware Routing for 2-D HyperX topologies (paper §3.2.3).

The paper's contribution.  PARX provides *both* minimal and non-minimal
static paths between every node pair on a statically routed InfiniBand
2-D HyperX, plus communication-demand-aware path balancing:

1. Every HCA gets four LIDs (LMC = 2).  While routing toward a node's
   ``LIDx``, the engine *virtually removes* the links internal to one
   half of the lattice (rules R1-R4 below), so some LIDs are reached
   minimally and others via forced detours — Figure 3 of the paper.
2. The MPI layer then picks the LID per message with Table 1: small
   messages select a LID whose routing preserved a minimal path, large
   messages select one whose routing forced the detour
   (:data:`SMALL_LID_CHOICE` / :data:`LARGE_LID_CHOICE`, consumed by
   :mod:`repro.mpi.pml`).
3. Path calculation is DFSSSP's modified Dijkstra, but edge updates use
   the ingested communication profile: a source with normalised demand
   ``w`` (0..255) toward the destination adds ``+w`` instead of ``+1``,
   separating high-traffic paths as much as possible (Algorithm 1).
4. Deadlock freedom comes from the subnet manager's virtual-lane
   layering over all four LID trees per node (the paper needed 5-8 VLs).

Rules (section 3.2.1) — the half whose *internal* links are removed
while routing toward LIDx:

=====  ==============  =================================
LIDx   rule            half removed (quadrants)
=====  ==============  =================================
LID0   R1              left   (Q0, Q1)
LID1   R2              right  (Q2, Q3)
LID2   R3              top    (Q0, Q3)
LID3   R4              bottom (Q1, Q2)
=====  ==============  =================================

Quadrant orientation (derived in
:func:`repro.topology.hyperx.hyperx_quadrant`): Q0 = top-left,
Q1 = bottom-left, Q2 = bottom-right, Q3 = top-right.

Fault tolerance is limited exactly as the paper's footnote 7 warns:
when masking plus real faults isolates a switch, the engine falls back
to the unmasked graph for that destination LID and records a note on
the fabric.
"""

from __future__ import annotations

from typing import Mapping


from repro.core.errors import ConfigurationError
from repro.ib.fabric import Fabric
from repro.routing.base import RoutingEngine, install_tree
from repro.routing.dijkstra import accumulate_tree_loads, tree_to_destination
from repro.topology.hyperx import coord_in_half, hyperx_shape_of
from repro.topology.network import Network

#: Rule R1-R4 half removed when routing toward each LID index.
HALF_REMOVED_BY_LID: dict[int, str] = {
    0: "left",
    1: "right",
    2: "top",
    3: "bottom",
}

#: Table 1a — valid LID indices for *small* messages, keyed by
#: (source quadrant, destination quadrant).
SMALL_LID_CHOICE: dict[tuple[int, int], tuple[int, ...]] = {
    (0, 0): (1, 3), (0, 1): (1,),   (0, 2): (0, 2), (0, 3): (3,),
    (1, 0): (1,),   (1, 1): (1, 2), (1, 2): (2,),   (1, 3): (0, 3),
    (2, 0): (1, 3), (2, 1): (2,),   (2, 2): (0, 2), (2, 3): (0,),
    (3, 0): (3,),   (3, 1): (1, 2), (3, 2): (0,),   (3, 3): (0, 3),
}

#: Table 1b — valid LID indices for *large* messages.
LARGE_LID_CHOICE: dict[tuple[int, int], tuple[int, ...]] = {
    (0, 0): (0, 2), (0, 1): (0,),   (0, 2): (0, 2), (0, 3): (2,),
    (1, 0): (0,),   (1, 1): (0, 3), (1, 2): (3,),   (1, 3): (0, 3),
    (2, 0): (1, 3), (2, 1): (3,),   (2, 2): (1, 3), (2, 3): (1,),
    (3, 0): (2,),   (3, 1): (1, 2), (3, 2): (1,),   (3, 3): (1, 2),
}


class ParxRouting(RoutingEngine):
    """Pattern-aware minimal + non-minimal routing (Algorithm 1).

    Parameters
    ----------
    demands:
        The ingested communication profile: ``demands[src][dst]`` is the
        normalised (0..255) traffic demand between two terminals, as
        produced by :class:`repro.mpi.profiler.CommunicationProfiler`.
        ``None`` or empty degrades gracefully to DFSSSP-style +1 updates
        (still with the LID masking — the multipath structure does not
        depend on the profile).
    """

    name = "parx"
    provides_deadlock_freedom = True
    #: The paper's deployment tuple: four LIDs per HCA, quadrant-encoded
    #: base LIDs.  Consumed by :meth:`repro.ib.subnet_manager.OpenSM.run`
    #: when the caller did not set lmc/lid_policy explicitly.
    sm_defaults = {"lmc": 2, "lid_policy": "quadrant"}

    def __init__(
        self, demands: Mapping[int, Mapping[int, int]] | None = None
    ) -> None:
        self.demands: dict[int, dict[int, int]] = {
            src: dict(row) for src, row in (demands or {}).items()
        }
        for src, row in self.demands.items():
            for dst, w in row.items():
                if not 0 <= w <= 255:
                    raise ConfigurationError(
                        f"demand {src}->{dst} = {w} outside the normalised "
                        "range 0..255"
                    )

    def check_topology(self, net: Network) -> None:
        """PARX runs on 2-D HyperX lattices with even dimensions only.

        Called by the subnet manager before LID assignment so a bad
        lattice fails with this engine-specific diagnostic instead of
        the quadrant LID policy's.
        """
        shape = hyperx_shape_of(net)
        if len(shape) != 2 or any(s % 2 for s in shape):
            raise ConfigurationError(
                f"PARX is defined for 2-D HyperX with even dimensions, "
                f"got shape {shape}"
            )

    def compute(self, fabric: Fabric) -> None:
        net = fabric.net
        if fabric.lidmap.lids_per_port != 4:
            raise ConfigurationError(
                "PARX needs LMC=2 (four LIDs per port); the subnet manager "
                f"assigned {fabric.lidmap.lids_per_port}"
            )
        self.check_topology(net)
        shape = hyperx_shape_of(net)
        masks = {
            i: _half_internal_links(net, shape, half)
            for i, half in HALF_REMOVED_BY_LID.items()
        }
        weights = [1.0] * len(net.links)

        # Demand toward each destination node, aggregated per source.
        demand_to: dict[int, dict[int, int]] = {}
        for src, row in self.demands.items():
            for dst, w in row.items():
                if w > 0:
                    demand_to.setdefault(dst, {})[src] = w

        terminal_set = set(net.terminals)
        optimized = sorted(d for d in self.demands if d in terminal_set)
        optimized_set = set(optimized)
        remaining = [t for t in net.terminals if t not in optimized_set]

        # The unprofiled source weights (attached-terminal counts) are
        # destination-independent; build them once, not per tree.
        graph = net.switch_graph()
        base_sources = {
            graph.switches[u]: float(graph.attached_counts[u])
            for u in graph.host_switches.tolist()
        }

        for nd in optimized:
            self._route_node(
                fabric, nd, masks, weights, demand_to.get(nd, {}), base_sources
            )
        for nd in remaining:
            self._route_node(fabric, nd, masks, weights, None, base_sources)

    # --- one destination node, all four LIDs --------------------------------
    def _route_node(
        self,
        fabric: Fabric,
        nd: int,
        masks: dict[int, frozenset[int]],
        weights: list[float],
        demand: dict[int, int] | None,
        base_sources: dict[int, float],
    ) -> None:
        net = fabric.net
        dsw = net.attached_switch(nd)
        for i in range(4):
            parent, hops = tree_to_destination(net, dsw, weights, masks[i])
            if not _covers_all_terminals(net, parent, dsw):
                # Footnote 7: masking + faults isolated a switch; fall
                # back to the unmasked graph for this LID.
                parent, hops = tree_to_destination(net, dsw, weights)
                fabric.notes.append(
                    f"parx: fallback to unmasked paths for node {nd} "
                    f"lid index {i} (rule {HALF_REMOVED_BY_LID[i]!r})"
                )
            install_tree(fabric, fabric.lidmap.lid(nd, i), parent)

            # Edge update before the next round (Algorithm 1): demand
            # weighted for profiled destinations, +1 per path otherwise.
            if demand is not None:
                sources: dict[int, float] = {}
                for src, w in demand.items():
                    if src == nd:
                        continue
                    sw = net.attached_switch(src)
                    sources[sw] = sources.get(sw, 0.0) + float(w)
            else:
                sources = dict(base_sources)
                sources[dsw] = max(0.0, sources.get(dsw, 0.0) - 1.0)
            for link_id, load in accumulate_tree_loads(
                net, parent, hops, sources
            ).items():
                weights[link_id] += load


def lid_choices(
    src_quadrant: int, dst_quadrant: int, large: bool
) -> tuple[int, ...]:
    """Valid destination LID indices per Table 1.

    ``large`` selects Table 1b (non-minimal detour paths); small
    messages (Table 1a) keep minimal paths.  Where two choices exist the
    caller picks randomly, as the paper's modified bfo PML does.
    """
    table = LARGE_LID_CHOICE if large else SMALL_LID_CHOICE
    return table[(src_quadrant, dst_quadrant)]


def _half_internal_links(
    net: Network, shape: tuple[int, int], half: str
) -> frozenset[int]:
    """Directed switch-switch links with *both* endpoints in ``half``."""
    masked: set[int] = set()
    for link in net.iter_links(enabled_only=False):
        if not (net.is_switch(link.src) and net.is_switch(link.dst)):
            continue
        c_src = net.node_meta(link.src)["coord"]
        c_dst = net.node_meta(link.dst)["coord"]
        if coord_in_half(c_src, shape, half) and coord_in_half(c_dst, shape, half):
            masked.add(link.id)
    return frozenset(masked)


def _covers_all_terminals(net: Network, parent: dict[int, int], dsw: int) -> bool:
    """Does the tree reach every switch that hosts terminals?"""
    graph = net.switch_graph()
    for u in graph.host_switches.tolist():
        sw = graph.switches[u]
        if sw != dsw and sw not in parent:
            return False
    return True
