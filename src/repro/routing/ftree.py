"""ftree routing: d-mod-k style deterministic up/down for Fat-Trees.

OpenSM's ``ftree`` engine (Zahavi's D-Mod-K family) routes every
destination down a dedicated spine: ascending switches pick the up port
indexed by the destination's ordinal modulo the feasible-port count, so
shift permutations become contention-free; descending toward a
destination is (nearly) unique in a tree.  This is the paper's Fat-Tree
baseline (combination 1: "Fat-Tree / ftree / linear").

The implementation is generic over any network whose switches carry a
``level`` annotation (both :func:`~repro.topology.fattree.k_ary_n_tree`
and :func:`~repro.topology.fattree.three_level_fattree` do).  For each
destination terminal it computes

* ``ddist[sw]`` — strictly-descending hop distance to the destination
  (defined only for switches with the destination below them), and
* ``dist[sw]`` — legal up*/down* hop distance,

then every switch forwards to the neighbour that keeps the route
minimal: descend as soon as the destination is below, otherwise climb
via a distance-minimal up port, breaking ties d-mod-k style by the
destination ordinal.  Paths are therefore shortest legal paths; in the
paper's director-switch plane that means an edge switch picks a line
card that reaches the destination's edge directly whenever one exists.

Faulty links simply drop out of the candidate sets (fail-in-place);
switches with no legal continuation toward some destination get no
table entry for it, exactly like real OpenSM — traffic never transits
them for that destination anyway.

Up/down routing on a tree cannot create cyclic channel dependencies, so
one virtual lane suffices — but the engine still advertises deadlock
freedom so the subnet manager verifies it.
"""

from __future__ import annotations

from collections import deque

from repro.core.errors import RoutingError, UnreachableError
from repro.ib.fabric import Fabric
from repro.routing.base import RoutingEngine
from repro.topology.network import Network

_INF = 1 << 30


class FtreeRouting(RoutingEngine):
    """Deterministic d-mod-k up/down routing for level-annotated trees."""

    name = "ftree"
    provides_deadlock_freedom = True

    def compute(self, fabric: Fabric) -> None:
        net = fabric.net
        level = _levels(net)
        down_reach = _down_reach(net, level)

        for ordinal, t in enumerate(net.terminals):
            tsw = net.attached_switch(t)
            ddist, dist = _distances(net, level, tsw)
            if all(
                dist.get(sw, _INF) >= _INF
                for sw in net.switches
                if sw != tsw and net.attached_terminals(sw)
            ) and len(net.switches) > 1:
                raise UnreachableError(
                    f"terminal {t} is unreachable from every other "
                    "terminal-hosting switch"
                )
            for dlid in fabric.lidmap.lids_of(t):
                for sw in net.switches:
                    if sw == tsw:
                        continue  # terminal hop already installed
                    link = _choose(
                        net, level, down_reach, ddist, dist, sw, t, ordinal
                    )
                    if link is not None:
                        fabric.set_route(sw, dlid, link)


def _choose(
    net: Network,
    level: dict[int, int],
    down_reach: dict[int, frozenset[int]],
    ddist: dict[int, int],
    dist: dict[int, int],
    sw: int,
    dest: int,
    ordinal: int,
) -> int | None:
    """Next-hop link at ``sw`` toward terminal ``dest`` (None = no route)."""
    # Descend as soon as the destination is below us, along a
    # distance-optimal child.
    if dest in down_reach[sw]:
        best = min(
            (
                ddist.get(link.dst, _INF)
                for link in net.out_links(sw)
                if net.is_switch(link.dst) and level[link.dst] < level[sw]
            ),
            default=_INF,
        )
        down = [
            link.id
            for link in net.out_links(sw)
            if net.is_switch(link.dst)
            and level[link.dst] < level[sw]
            and ddist.get(link.dst, _INF) == best
        ]
        if best < _INF and down:
            return down[ordinal % len(down)]
        return None
    # Otherwise climb via a distance-minimal up port.
    best = min(
        (
            dist.get(link.dst, _INF)
            for link in net.out_links(sw)
            if net.is_switch(link.dst) and level[link.dst] > level[sw]
        ),
        default=_INF,
    )
    if best >= _INF:
        return None
    up = [
        link.id
        for link in net.out_links(sw)
        if net.is_switch(link.dst)
        and level[link.dst] > level[sw]
        and dist.get(link.dst, _INF) == best
    ]
    return up[ordinal % len(up)]


def _levels(net: Network) -> dict[int, int]:
    level: dict[int, int] = {}
    for sw in net.switches:
        meta = net.node_meta(sw)
        if "level" not in meta:
            raise RoutingError(
                f"ftree routing needs tree 'level' annotations; switch {sw} "
                "has none (is this really a Fat-Tree?)"
            )
        level[sw] = int(meta["level"])
    return level


def _down_reach(
    net: Network, level: dict[int, int]
) -> dict[int, frozenset[int]]:
    """Terminals reachable from each switch by strictly descending."""
    order = sorted(net.switches, key=lambda s: level[s])
    down_reach: dict[int, frozenset[int]] = {}
    for sw in order:  # ascending levels: children done before parents
        acc: set[int] = set(net.attached_terminals(sw))
        for link in net.out_links(sw):
            if net.is_switch(link.dst) and level[link.dst] < level[sw]:
                acc.update(down_reach[link.dst])
        down_reach[sw] = frozenset(acc)
    return down_reach


def _distances(
    net: Network, level: dict[int, int], dest_switch: int
) -> tuple[dict[int, int], dict[int, int]]:
    """Per-destination descending and legal up*/down* hop distances.

    ``ddist`` is a BFS from the destination switch climbing *up*ward in
    reverse (a forward descending path reversed ascends); ``dist`` adds
    the climb phase by a level-descending sweep:
    ``dist[u] = min(ddist[u], 1 + min over up-neighbours of dist)``.
    """
    ddist: dict[int, int] = {dest_switch: 0}
    queue = deque([dest_switch])
    while queue:
        u = queue.popleft()
        for link in net.in_links(u):
            v = link.src
            if (
                net.is_switch(v)
                and level[v] > level[u]
                and v not in ddist
            ):
                ddist[v] = ddist[u] + 1
                queue.append(v)

    dist: dict[int, int] = {}
    for sw in sorted(net.switches, key=lambda s: -level[s]):
        best = ddist.get(sw, _INF)
        for link in net.out_links(sw):
            if net.is_switch(link.dst) and level[link.dst] > level[sw]:
                best = min(best, 1 + dist.get(link.dst, _INF))
        dist[sw] = best
    return ddist, dist
