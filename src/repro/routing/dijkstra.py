"""The modified Dijkstra shared by the SSSP family and PARX.

Computes, for one destination switch, the out-link every other switch
uses toward it — a destination tree, which is what a linear forwarding
table stores per LID.

The metric is lexicographic ``(hop count, accumulated link weight)``:
hops dominate, so routes stay *minimal* (the paper's premise: "available
static routing for IB will only calculate routes along the minimal
paths", section 3.2.1), while the weight — incremented by the SSSP
family after every destination — balances traffic across equal-hop
alternatives.  PARX achieves its *non*-minimal paths not by weighting
but by masking links out of the graph before calling this function.
"""

from __future__ import annotations

import heapq
from typing import Collection, Sequence

from repro.topology.network import Network

#: Sentinel distance for unreached switches.
UNREACHED = (1 << 30, float("inf"))


def tree_to_destination(
    net: Network,
    dest_switch: int,
    weights: Sequence[float],
    masked_links: Collection[int] = (),
) -> tuple[dict[int, int], dict[int, int]]:
    """Shortest-path destination tree over the switch graph.

    Parameters
    ----------
    net:
        The fabric; only enabled switch-to-switch links participate.
    dest_switch:
        Tree root (the switch owning the destination LID).
    weights:
        Per-link-id balancing weights (indexable by link id).
    masked_links:
        Link ids to treat as absent — PARX's rules R1-R4 virtually
        remove half-internal links this way.

    Returns
    -------
    (parent, hops):
        ``parent[switch]`` is the out-link id that switch forwards on;
        ``hops[switch]`` its hop distance.  Switches unreachable under
        the mask are absent from both (the caller decides whether that
        is a fault, a PARX fallback, or fine).

    Ties on ``(hops, weight-sum)`` break toward the link with the lower
    current weight, then the lower link id, making the tree independent
    of dict iteration order.
    """
    masked = masked_links if isinstance(masked_links, (set, frozenset)) else set(masked_links)

    # dist keys: (hops, weight_sum); parent choice tie-broken explicitly.
    dist: dict[int, tuple[int, float]] = {dest_switch: (0, 0.0)}
    parent: dict[int, int] = {}
    done: set[int] = set()
    # heap entries: (hops, weight_sum, parent_link_weight, parent_link_id, node)
    heap: list[tuple[int, float, float, int, int]] = [(0, 0.0, 0.0, -1, dest_switch)]

    while heap:
        hops_u, w_u, _, plink, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        if plink >= 0:
            parent[u] = plink
        # Relax the *in*-links of u: a switch v with link v->u can reach
        # the destination through u.
        for link in net.in_links(u):
            v = link.src
            if v in done or not net.is_switch(v) or link.id in masked:
                continue
            cand = (hops_u + 1, w_u + float(weights[link.id]))
            best = dist.get(v, UNREACHED)
            if cand < best:
                dist[v] = cand
                heapq.heappush(
                    heap, (cand[0], cand[1], float(weights[link.id]), link.id, v)
                )
            elif cand == best:
                # Same (hops, weight): deterministic preference for the
                # lighter, lower-id link.  Push it; the pop order of the
                # full tuple settles the choice.
                heapq.heappush(
                    heap, (cand[0], cand[1], float(weights[link.id]), link.id, v)
                )

    hops = {u: d[0] for u, d in dist.items() if u in done}
    return parent, hops


def accumulate_tree_loads(
    net: Network,
    parent: dict[int, int],
    hops: dict[int, int],
    source_weight: dict[int, float],
) -> dict[int, float]:
    """Traffic each tree link would carry, given per-switch source weight.

    ``source_weight[switch]`` is the demand injected at that switch
    (e.g. its attached-terminal count for SSSP's "+1 per path", or the
    summed communication-profile demand for PARX).  Processing switches
    deepest-first pushes each switch's carry onto its parent link and
    into its parent's carry, so the whole subtree accounting is O(V)
    instead of O(paths x hops).
    """
    carry = dict(source_weight)
    load: dict[int, float] = {}
    for u in sorted(parent, key=lambda s: -hops[s]):
        w = carry.get(u, 0.0)
        if w == 0.0:
            continue
        link_id = parent[u]
        load[link_id] = load.get(link_id, 0.0) + w
        nxt = net.link(link_id).dst
        carry[nxt] = carry.get(nxt, 0.0) + w
    return load
