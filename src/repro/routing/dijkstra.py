"""The modified Dijkstra shared by the SSSP family and PARX.

Computes, for one destination switch, the out-link every other switch
uses toward it — a destination tree, which is what a linear forwarding
table stores per LID.

The metric is lexicographic ``(hop count, accumulated link weight)``:
hops dominate, so routes stay *minimal* (the paper's premise: "available
static routing for IB will only calculate routes along the minimal
paths", section 3.2.1), while the weight — incremented by the SSSP
family after every destination — balances traffic across equal-hop
alternatives.  PARX achieves its *non*-minimal paths not by weighting
but by masking links out of the graph before calling this function.
"""

from __future__ import annotations

import heapq
from typing import Collection, Sequence

import numpy as np

from repro.routing.arrays import tree_core
from repro.topology.network import Network

#: Sentinel distance for unreached switches.
UNREACHED = (1 << 30, float("inf"))


def tree_to_destination(
    net: Network,
    dest_switch: int,
    weights: Sequence[float],
    masked_links: Collection[int] = (),
) -> tuple[dict[int, int], dict[int, int]]:
    """Shortest-path destination tree over the switch graph.

    Parameters
    ----------
    net:
        The fabric; only enabled switch-to-switch links participate.
    dest_switch:
        Tree root (the switch owning the destination LID).
    weights:
        Per-link-id balancing weights (indexable by link id).
    masked_links:
        Link ids to treat as absent — PARX's rules R1-R4 virtually
        remove half-internal links this way.

    Returns
    -------
    (parent, hops):
        ``parent[switch]`` is the out-link id that switch forwards on;
        ``hops[switch]`` its hop distance.  Switches unreachable under
        the mask are absent from both (the caller decides whether that
        is a fault, a PARX fallback, or fine).

    Ties on ``(hops, weight-sum)`` break toward the link with the lower
    current weight, then the lower link id, making the tree independent
    of dict iteration order.

    Runs on the array core (:mod:`repro.routing.arrays`) over the
    network's cached CSR view; ``parent`` is keyed in settlement order,
    exactly like the reference implementation
    (:func:`reference_tree_to_destination`), which
    :func:`accumulate_tree_loads` relies on for float-exact load sums.
    """
    graph = net.switch_graph()
    root = int(graph.index[dest_switch])
    if root < 0:
        # Destination is not a switch — defer to the reference, which
        # tolerates it (no engine does this, but keep semantics equal).
        return reference_tree_to_destination(net, dest_switch, weights, masked_links)
    view = graph.masked(masked_links)
    # Engines keep weights as plain float lists; anything else (numpy
    # arrays, tuples) is converted once — list indexing wins in the core.
    wts = weights if type(weights) is list else np.asarray(weights, dtype=float).tolist()
    parent_arr, hops_arr, order = tree_core(view, root, wts)
    switches = graph.switches
    parent: dict[int, int] = {}
    hops: dict[int, int] = {}
    for u in order:
        node = switches[u]
        link_id = parent_arr[u]
        if link_id >= 0:
            parent[node] = link_id
        hops[node] = hops_arr[u]
    return parent, hops


def reference_tree_to_destination(
    net: Network,
    dest_switch: int,
    weights: Sequence[float],
    masked_links: Collection[int] = (),
) -> tuple[dict[int, int], dict[int, int]]:
    """The original object-graph Dijkstra, kept as the executable
    specification the array core is equivalence-tested against
    (``tests/test_routing_arrays.py``)."""
    masked = masked_links if isinstance(masked_links, (set, frozenset)) else set(masked_links)

    # dist keys: (hops, weight_sum); parent choice tie-broken explicitly.
    dist: dict[int, tuple[int, float]] = {dest_switch: (0, 0.0)}
    parent: dict[int, int] = {}
    done: set[int] = set()
    # heap entries: (hops, weight_sum, parent_link_weight, parent_link_id, node)
    heap: list[tuple[int, float, float, int, int]] = [(0, 0.0, 0.0, -1, dest_switch)]

    while heap:
        hops_u, w_u, _, plink, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        if plink >= 0:
            parent[u] = plink
        # Relax the *in*-links of u: a switch v with link v->u can reach
        # the destination through u.
        for link in net.in_links(u):
            v = link.src
            if v in done or not net.is_switch(v) or link.id in masked:
                continue
            cand = (hops_u + 1, w_u + float(weights[link.id]))
            best = dist.get(v, UNREACHED)
            if cand < best:
                dist[v] = cand
                heapq.heappush(
                    heap, (cand[0], cand[1], float(weights[link.id]), link.id, v)
                )
            elif cand == best:
                # Same (hops, weight): deterministic preference for the
                # lighter, lower-id link.  Push it; the pop order of the
                # full tuple settles the choice.
                heapq.heappush(
                    heap, (cand[0], cand[1], float(weights[link.id]), link.id, v)
                )

    hops = {u: d[0] for u, d in dist.items() if u in done}
    return parent, hops


def accumulate_tree_loads(
    net: Network,
    parent: dict[int, int],
    hops: dict[int, int],
    source_weight: dict[int, float],
) -> dict[int, float]:
    """Traffic each tree link would carry, given per-switch source weight.

    ``source_weight[switch]`` is the demand injected at that switch
    (e.g. its attached-terminal count for SSSP's "+1 per path", or the
    summed communication-profile demand for PARX).  Processing switches
    deepest-first pushes each switch's carry onto its parent link and
    into its parent's carry, so the whole subtree accounting is O(V)
    instead of O(paths x hops).
    """
    carry = dict(source_weight)
    load: dict[int, float] = {}
    # Deepest-first = stable sort of `parent` by descending hops.  The
    # keys arrive in settlement order (non-decreasing hops), so bucketing
    # by hop count and draining the levels top-down reproduces that
    # order exactly — same float additions in the same sequence — at
    # O(V) instead of a keyed sort.
    levels: dict[int, list[int]] = {}
    for u in parent:
        levels.setdefault(hops[u], []).append(u)
    link_dst = net.switch_graph().link_dst_list
    carry_get = carry.get
    load_get = load.get
    for h in sorted(levels, reverse=True):
        for u in levels[h]:
            w = carry_get(u, 0.0)
            if w == 0.0:
                continue
            link_id = parent[u]
            load[link_id] = load_get(link_id, 0.0) + w
            nxt = link_dst[link_id]
            carry[nxt] = carry_get(nxt, 0.0) + w
    return load
