"""Figure 5c: Netgauge's effective bisection bandwidth.

Paper headlines (section 5.1):

* at the dense 14-node allocation, PARX "almost doubles (~1.9x) the
  effective bisection bandwidth" over DFSSSP,
* PARX "outperforms Fat-Tree / ftree (with 2%-6%) for the mid-range of
  the node counts",
* at full-system scale PARX regresses: "artificially increasing the
  path length for large messages creates more congestion on a global
  scale" (gain -0.12..-0.24 in the paper's rightmost cells).
"""

from __future__ import annotations

import pytest

from repro.core.units import GIB, MIB, format_rate
from repro.experiments import BASELINE, THE_FIVE, RunSpec, run_capability
from repro.experiments.reporting import series_table
from repro.workloads.netbench import effective_bisection_bandwidth

SCALE = 2
NODE_COUNTS = (8, 14, 28, 56, 112, 168)
SAMPLES = 20


@pytest.fixture(scope="module")
def series():
    out = {}
    for combo in THE_FIVE:
        for n in NODE_COUNTS:
            spec = RunSpec(
                combo.key, "ebb", num_nodes=n,
                reps=1, scale=SCALE, seed=0, sim_mode="static",
            )
            res = run_capability(
                spec,
                lambda job, sim: effective_bisection_bandwidth(
                    job, sim, samples=SAMPLES, size=1 * MIB, seed=42
                ),
                higher_is_better=True,
            )
            out[(combo.key, n)] = res.best
    return out


def test_fig5c_ebb(benchmark, series, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = {
        combo.label: [series[(combo.key, n)] for n in NODE_COUNTS]
        for combo in THE_FIVE
    }
    write_report(
        "fig5c_ebb",
        series_table(
            f"Figure 5c — effective bisection bandwidth "
            f"({SAMPLES} random bisections, 1 MiB)",
            NODE_COUNTS, rows, formatter=format_rate,
        ),
    )
    benchmark.extra_info["ebb_14_parx_vs_dfsssp"] = (
        series[("hx-parx-clustered", 14)] / series[("hx-dfsssp-linear", 14)]
    )

    # 1. The dense-allocation recovery: PARX beats minimal DFSSSP at 14
    #    nodes.  (The two combinations also differ in placement —
    #    clustered vs linear — which dilutes the paper's ~1.9x here;
    #    test_fig5c_parx_doubles_dense_case isolates the routing.)
    ratio = series[("hx-parx-clustered", 14)] / series[("hx-dfsssp-linear", 14)]
    assert ratio > 1.05, f"PARX/DFSSSP at 14 nodes only {ratio:.2f}x"

    # 2. Minimal-routed HyperX trails the Fat-Tree at dense counts.
    assert series[("hx-dfsssp-linear", 14)] < series[(BASELINE.key, 14)]

    # 3. PARX's detours cost bandwidth at full-system scale relative to
    #    its own dense-allocation sweet spot (gain over DFSSSP shrinks).
    full = NODE_COUNTS[-1]
    dense_gain = ratio
    full_gain = (
        series[("hx-parx-clustered", full)] / series[("hx-dfsssp-linear", full)]
    )
    assert full_gain < dense_gain

    # 4. Everything stays at or below the line rate (the capability
    #    runner adds ~1% run-to-run noise on top of the physical bound).
    for v in series.values():
        assert 0 < v < 3.4 * GIB * 1.05


def test_fig5c_parx_doubles_dense_case(write_report):
    """The paper's apples-to-apples claim: on the SAME dense 14-node
    allocation (7+7 nodes on two switches, one cable), PARX almost
    doubles (~1.9x) the effective bisection bandwidth over DFSSSP."""
    from repro.experiments import build_fabric, get_combination
    from repro.experiments.configs import make_pml
    from repro.mpi.job import Job
    from repro.sim.engine import FlowSimulator

    dfsssp = get_combination("hx-dfsssp-linear")
    parx = get_combination("hx-parx-clustered")
    fab_d = build_fabric(dfsssp, scale=1)
    fab_p = build_fabric(parx, scale=1)
    net_d, net_p = fab_d.net, fab_p.net
    nodes_d = net_d.terminals[:14]
    nodes_p = net_p.terminals[:14]
    ebb_d = effective_bisection_bandwidth(
        Job(fab_d, nodes_d), FlowSimulator(net_d, mode="static"),
        samples=SAMPLES, size=1 * MIB, seed=42,
    )
    ebb_p = effective_bisection_bandwidth(
        Job(fab_p, nodes_p, pml=make_pml(parx)),
        FlowSimulator(net_p, mode="static"),
        samples=SAMPLES, size=1 * MIB, seed=42,
    )
    ratio = ebb_p / ebb_d
    write_report(
        "fig5c_dense_case",
        f"Dense 14-node eBB: DFSSSP {format_rate(ebb_d)} vs PARX "
        f"{format_rate(ebb_p)} -> {ratio:.2f}x (paper ~1.9x)",
    )
    assert ratio > 1.4


def test_fig5c_random_placement_helps_dense_case(series):
    """Random placement (section 3.1) also lifts the 14-node eBB over
    linear placement on the HyperX — the paper's other mitigation."""
    assert series[("hx-dfsssp-random", 14)] > series[("hx-dfsssp-linear", 14)]
