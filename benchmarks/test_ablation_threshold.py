"""Ablation: PARX's 512-byte small/large message threshold (§3.2.4).

The paper calibrated the threshold with Multi-PingPong/mpiGraph-style
tests: below it, messages are latency-bound and should take the minimal
LIDs; above it the single-cable congestion dominates and detours win.
This sweep regenerates the calibration for the dense two-switch case
(7 node pairs on one cable) and verifies 512 B is a sound choice: at
the threshold scale the detour policy already wins for large messages
and still loses for small ones.
"""

from __future__ import annotations

import pytest

from repro.core.units import KIB, MIB, format_bytes, format_time
from repro.experiments import build_fabric, get_combination
from repro.experiments.configs import make_pml
from repro.experiments.reporting import series_table
from repro.mpi.job import Job
from repro.mpi.pml import ParxBfoPml
from repro.sim.engine import FlowSimulator

#: Message sizes swept around the paper's 512 B threshold.
SIZES = (64.0, 256.0, 512.0, 4.0 * KIB, 64.0 * KIB, 1.0 * MIB)


def _dense_pairs_time(job, sim, size: float) -> float:
    """Time of the adversarial pattern: 7 concurrent pairs between the
    two switches of a dense 14-node allocation."""
    phase = [(i, i + 7, size) for i in range(7)]
    return sim.run(job.materialize([phase], label="mupp")).total_time


@pytest.fixture(scope="module")
def sweep():
    combo = get_combination("hx-parx-clustered")
    fabric = build_fabric(combo, scale=1)
    net = fabric.net
    nodes = net.terminals[:14]
    sim = FlowSimulator(net, mode="static")
    out: dict[tuple[str, float], float] = {}
    for policy, threshold in (("always-small", 1 << 60), ("always-large", 0)):
        job = Job(fabric, nodes, pml=ParxBfoPml(threshold=int(threshold)))
        for size in SIZES:
            out[(policy, size)] = _dense_pairs_time(job, sim, size)
    job = Job(fabric, nodes, pml=make_pml(combo))  # the real 512 B policy
    for size in SIZES:
        out[("paper-512B", size)] = _dense_pairs_time(job, sim, size)
    return out


def test_ablation_threshold(benchmark, sweep, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = {
        policy: [sweep[(policy, s)] for s in SIZES]
        for policy in ("always-small", "always-large", "paper-512B")
    }
    header = "sizes: " + ", ".join(format_bytes(s) for s in SIZES)
    write_report(
        "ablation_threshold",
        header + "\n" + series_table(
            "PARX threshold ablation — dense 7-pairs-1-cable pattern",
            [int(s) for s in SIZES], rows, formatter=format_time,
        ),
    )

    # Small messages: minimal LIDs (always-small) must win.
    assert sweep[("always-small", 64.0)] < sweep[("always-large", 64.0)]
    # Large messages: detour LIDs must win (the whole point of PARX).
    assert sweep[("always-large", 1.0 * MIB)] < sweep[("always-small", 1.0 * MIB)]

    # There is a crossover, and the paper's 512 B threshold policy
    # tracks the better branch on both ends of the sweep.
    assert sweep[("paper-512B", 64.0)] == pytest.approx(
        sweep[("always-small", 64.0)], rel=0.05
    )
    assert sweep[("paper-512B", 1.0 * MIB)] == pytest.approx(
        sweep[("always-large", 1.0 * MIB)], rel=0.05
    )


def test_ablation_crossover_below_64k(sweep):
    """The congestion term (7x serialisation) overtakes the detour's
    extra hop well below 64 KiB on QDR — consistent with a sub-KiB
    threshold choice for 7 nodes per switch."""
    crossover = None
    for size in SIZES:
        if sweep[("always-large", size)] < sweep[("always-small", size)]:
            crossover = size
            break
    assert crossover is not None
    assert crossover <= 64.0 * KIB
