"""Ablations: placement strategies and PML software overhead.

Placement (paper §3.1): random rank assignment is the zero-effort
bottleneck mitigation for a statically routed HyperX — it trades small-
message latency for bandwidth.  PML (§3.2.4/§5.1): PARX *requires* the
multi-path bfo layer, whose software overhead — not the routing — is
what regresses latency benchmarks; plain bfo (round-robin, no Table 1)
isolates that cost.
"""

from __future__ import annotations

import pytest

from repro.core.units import MIB, format_time
from repro.experiments import build_fabric, get_combination
from repro.experiments.reporting import series_table
from repro.mpi.job import Job
from repro.mpi.pml import BfoPml, Ob1Pml, ParxBfoPml
from repro.placement import placement
from repro.sim.engine import FlowSimulator
from repro.workloads.netbench import imb_latency

NODES = 28


@pytest.fixture(scope="module")
def hx_env():
    combo = get_combination("hx-dfsssp-linear")
    fabric = build_fabric(combo, scale=1)
    return fabric.net, fabric


class TestPlacementAblation:
    @pytest.fixture(scope="class")
    def sweep(self, hx_env):
        net, fabric = hx_env
        sim = FlowSimulator(net, mode="static")
        out = {}
        for kind in ("linear", "clustered", "random"):
            nodes = placement(kind, net.terminals, NODES, seed=5)
            job = Job(fabric, nodes)
            out[(kind, "alltoall-1MiB")] = imb_latency(
                job, sim, "Alltoall", 1 * MIB
            )
            out[(kind, "barrier")] = imb_latency(job, sim, "Barrier", 0)
        return out

    def test_placement_tradeoff(self, benchmark, sweep, write_report):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = {
            kind: [sweep[(kind, "alltoall-1MiB")], sweep[(kind, "barrier")]]
            for kind in ("linear", "clustered", "random")
        }
        write_report(
            "ablation_placement",
            series_table(
                f"Placement ablation — {NODES} nodes on HyperX/DFSSSP "
                "(columns: Alltoall 1 MiB, Barrier)",
                [0, 1], rows, formatter=format_time, col_name="metric",
            ),
        )
        # Bandwidth: random placement softens the dense Alltoall.
        assert (
            sweep[("random", "alltoall-1MiB")]
            < sweep[("linear", "alltoall-1MiB")]
        )
        # Latency: random placement cannot beat the dense allocation
        # (the disadvantage the paper concedes in section 3.1).
        assert sweep[("random", "barrier")] >= sweep[("linear", "barrier")]


class TestPmlAblation:
    @pytest.fixture(scope="class")
    def sweep(self):
        combo = get_combination("hx-parx-clustered")
        fabric = build_fabric(combo, scale=1)
        net = fabric.net
        nodes = net.terminals[:NODES]
        sim = FlowSimulator(net, mode="static")
        out = {}
        for name, pml in (
            ("ob1", Ob1Pml()),
            ("bfo", BfoPml()),
            ("parx-bfo", ParxBfoPml()),
        ):
            job = Job(fabric, nodes, pml=pml)
            out[(name, "barrier")] = imb_latency(job, sim, "Barrier", 0)
            out[(name, "alltoall")] = imb_latency(job, sim, "Alltoall", 1 * MIB)
        return out

    def test_pml_overhead_isolated(self, benchmark, sweep, write_report):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rows = {
            name: [sweep[(name, "barrier")], sweep[(name, "alltoall")]]
            for name in ("ob1", "bfo", "parx-bfo")
        }
        write_report(
            "ablation_pml",
            series_table(
                "PML ablation on the PARX fabric (columns: Barrier, "
                "Alltoall 1 MiB)",
                [0, 1], rows, formatter=format_time, col_name="metric",
            ),
        )
        # The Barrier regression is purely the bfo software overhead:
        # plain bfo and parx-bfo pay it alike, ob1 does not.
        assert sweep[("bfo", "barrier")] > 2 * sweep[("ob1", "barrier")]
        assert sweep[("parx-bfo", "barrier")] == pytest.approx(
            sweep[("bfo", "barrier")], rel=0.25
        )
        # For bandwidth, the Table 1 selection beats blind round-robin:
        # round-robin sprays large messages over minimal LIDs half the
        # time, parx-bfo always detours them.
        assert sweep[("parx-bfo", "alltoall")] <= sweep[("bfo", "alltoall")]


def test_pml_round_robin_uses_all_lids(hx_env):
    """Mechanism check for the bfo model: four consecutive messages on
    one connection address four different LIDs."""
    combo = get_combination("hx-parx-clustered")
    fabric = build_fabric(combo, scale=1)
    net = fabric.net
    pml = BfoPml()
    t = net.terminals
    seen = {pml.lid_index(fabric, t[0], t[1], 1 * MIB) for _ in range(4)}
    assert seen == {0, 1, 2, 3}
