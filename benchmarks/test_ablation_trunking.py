"""Ablation: HyperX trunking (the K parameter of Ahn et al.).

The HyperX design space the paper builds on has three levers: lattice
shape S, terminals per switch T, and the trunking factor K — parallel
cables per switch pair.  The deployed machine used K=1 (57.1%
bisection); this sweep shows what doubling the weak dimension's
trunking would have bought: the single-cable bottleneck of Figure 1
halves without any routing tricks, at a quantified cable cost.
"""

from __future__ import annotations

import pytest

from repro.core.units import MIB, format_time
from repro.experiments.reporting import series_table
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.routing import DfssspRouting, audit_fabric
from repro.sim.engine import FlowSimulator
from repro.topology import hyperx, hyperx_bisection_fraction, plane_cost
from repro.topology.cost import hyperx_packaging
from repro.topology.properties import cable_count

SHAPE = (6, 4)
T = 7
TRUNKS = ((1, 1), (1, 2), (2, 2))


def _dense_shift_time(net, fabric) -> float:
    nodes = (
        net.attached_terminals(net.switches[0])
        + net.attached_terminals(net.switches[1])
    )
    job = Job(fabric, nodes)
    phase = [(i, i + T, 1.0 * MIB) for i in range(T)]
    return FlowSimulator(net, mode="static").run(
        job.materialize([phase])
    ).total_time


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for trunk in TRUNKS:
        net = hyperx(SHAPE, T, trunking=trunk)
        fabric = OpenSM(net).run(DfssspRouting())
        assert audit_fabric(fabric, sample_pairs=300).clean
        out[trunk] = {
            "time": _dense_shift_time(net, fabric),
            "bisection": hyperx_bisection_fraction(SHAPE, T, trunking=trunk),
            "cables": cable_count(net, switches_only=True),
            "cost": plane_cost(net, hyperx_packaging(net)).total,
        }
    return out


def test_ablation_trunking(benchmark, sweep, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = {
        f"K={k} (bisect {d['bisection']:.0%}, {d['cables']} cables, "
        f"${d['cost'] / 1000:.0f}k)": [d["time"]]
        for k, d in sweep.items()
    }
    write_report(
        "ablation_trunking",
        series_table(
            f"Trunking ablation — dense {T}-pair shift on a {SHAPE} HyperX",
            [2 * T], rows, formatter=format_time,
        ),
    )

    t1 = sweep[(1, 1)]["time"]
    t2 = sweep[(1, 2)]["time"]
    # The dense pairs sit along dimension 1 (row-major switch order
    # makes switches 0 and 1 dim-1 neighbours); doubling that
    # dimension's trunking halves the bottleneck.
    assert t2 == pytest.approx(t1 / 2, rel=0.15)
    # DFSSSP must actually spread flows over the parallel cables for
    # that to happen — the balanced-tie-break property at work.
    assert sweep[(2, 2)]["time"] <= t2 * 1.05

    # The price: cables scale with K per dimension.
    assert sweep[(1, 2)]["cables"] > sweep[(1, 1)]["cables"]
    assert sweep[(2, 2)]["cables"] > sweep[(1, 2)]["cables"]
    # Bisection follows the weak dimension: doubling both dimensions
    # doubles the true bisection.
    assert sweep[(2, 2)]["bisection"] == pytest.approx(
        2 * sweep[(1, 1)]["bisection"]
    )
