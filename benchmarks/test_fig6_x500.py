"""Figures 6j-6l: HPL, HPCG and Graph500 across scales.

Paper headlines (section 5.2): the x500 metrics grow with node count on
both planes; random placement on the HyperX improved HPL by up to 46%
and HPCG/Graph500 by up to 36%/7% in the best runs (attributed partly
to run-to-run variability and the small inputs).  The robust shape
claims encoded here: metrics scale up, the planes stay within a modest
band of each other, and Graph500 — the most network-bound member —
shows the largest spread between configurations.
"""

from __future__ import annotations

import pytest

from repro.experiments import BASELINE, THE_FIVE, RunSpec, run_capability, whisker_stats
from repro.experiments.reporting import series_table
from repro.workloads.x500 import X500_APPS

SCALE = 2
COUNTS = {"HPL": (7, 14, 28, 56, 112), "HPCG": (7, 14, 28, 56, 112),
          "GraD": (4, 8, 16, 32, 64, 128)}


@pytest.fixture(scope="module")
def results():
    out = {}
    for name, app in X500_APPS.items():
        for combo in THE_FIVE:
            for n in COUNTS[name]:
                spec = RunSpec(
                    combo.key, name, num_nodes=n,
                    reps=3, scale=SCALE, seed=0, sim_mode="static",
                )
                res = run_capability(
                    spec,
                    lambda job, sim, app=app, n=n: app.metric(
                        n, app.kernel_runtime(job, sim)
                    ),
                    higher_is_better=True,
                    rank_phases_for_profile=app.rank_phases(n),
                )
                out[(name, combo.key, n)] = whisker_stats(res.values)
    return out


def test_fig6_x500(benchmark, results, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    units = {"HPL": "Gflop/s", "HPCG": "Gflop/s", "GraD": "GTEPS"}
    blocks = []
    for name in X500_APPS:
        rows = {
            combo.label: [
                results[(name, combo.key, n)].maximum for n in COUNTS[name]
            ]
            for combo in THE_FIVE
        }
        blocks.append(
            series_table(
                f"Figure 6 ({name}) — {units[name]}, best of 3",
                COUNTS[name], rows, formatter=lambda v: f"{v:,.1f}",
            )
        )
    write_report("fig6_x500", "\n\n".join(blocks))

    # Shape 1: every metric grows with node count on every plane.
    for name in X500_APPS:
        for combo in THE_FIVE:
            series = [
                results[(name, combo.key, n)].maximum for n in COUNTS[name]
            ]
            assert series[-1] > series[0], (name, combo.key)

    # Shape 2: HPL and HPCG stay within a modest band across planes
    # (compute-dominated); Graph500 spreads more (network-bound).
    def spread(name, n):
        vals = [results[(name, c.key, n)].maximum for c in THE_FIVE]
        return max(vals) / min(vals)

    hpl_spread = spread("HPL", COUNTS["HPL"][-1])
    grad_spread = spread("GraD", COUNTS["GraD"][-1])
    assert hpl_spread < 1.5
    assert grad_spread > hpl_spread

    benchmark.extra_info["hpl_spread"] = hpl_spread
    benchmark.extra_info["grad_spread"] = grad_spread


def test_fig6_hpl_weak_star_rule(results):
    """HPL shrinks its matrix at 224 nodes and beyond; at our half
    scale the largest sweep point stays below that threshold, so the
    per-node efficiency must not collapse across the sweep."""
    first, last = COUNTS["HPL"][0], COUNTS["HPL"][-1]
    eff_first = results[("HPL", BASELINE.key, first)].maximum / first
    eff_last = results[("HPL", BASELINE.key, last)].maximum / last
    assert eff_last > 0.6 * eff_first
