"""Figure 7: the 3-hour, 14-application capacity evaluation.

Paper totals (completed runs in 3 h, 664 of 672 nodes busy):

=============================  =====
Fat-Tree / ftree / linear       1202
Fat-Tree / SSSP / clustered      980
HyperX / DFSSSP / linear        1355  (best: +12.7% over the baseline)
HyperX / DFSSSP / random        1017
HyperX / PARX / clustered       1233
=============================  =====

The paper frames this as a *qualitative* comparison and recommends
simulation for the quantitative version (section 5.3) — which is what
this harness is.  Robust shape claims encoded below: per-app counts
land in the paper's band for the calibrated apps, every configuration
completes a four-digit total, and the placement-sensitive swing apps
(MuPP, EmDL, Alltoall-heavy codes) actually swing.  The full panels are
written to the report for side-by-side reading; where the model's
ordering deviates from the paper's (it compresses the spread — inter-
job interference on the real machine went beyond bandwidth sharing),
EXPERIMENTS.md discusses the gap.
"""

from __future__ import annotations

import pytest

from repro.experiments import THE_FIVE, run_capacity
from repro.experiments.capacity import CAPACITY_APPS
from repro.experiments.reporting import capacity_table

PAPER_TOTALS = {
    "ft-ftree-linear": 1202,
    "ft-sssp-clustered": 980,
    "hx-dfsssp-linear": 1355,
    "hx-dfsssp-random": 1017,
    "hx-parx-clustered": 1233,
}
PAPER_BASELINE_RUNS = {
    "AMG": 77, "CoMD": 149, "FFVC": 37, "GraD": 188, "HPCG": 44,
    "HPL": 41, "MILC": 83, "MiFE": 70, "mVMC": 37, "NTCh": 84,
    "Qbox": 63, "FFT": 84, "MuPP": 203, "EmDL": 42,
}


@pytest.fixture(scope="module")
def panels():
    return {
        combo.key: run_capacity(combo, scale=1, sim_mode="static")
        for combo in THE_FIVE
    }


def test_fig7_capacity(benchmark, panels, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    labels = {c.key: c.label for c in THE_FIVE}
    table = capacity_table(
        "Figure 7 — completed runs per application in 3 h (reproduced)",
        {labels[k]: p.runs for k, p in panels.items()},
        [a for a, _ in CAPACITY_APPS],
    )
    paper_row = "  paper totals: " + ", ".join(
        f"{labels[k]}={v}" for k, v in PAPER_TOTALS.items()
    )
    write_report("fig7_capacity", table + "\n" + paper_row)
    for k, p in panels.items():
        benchmark.extra_info[k] = p.total_runs

    # Every configuration completes a Figure 7-scale total.
    for key, panel in panels.items():
        assert 800 < panel.total_runs < 2000, (key, panel.total_runs)


def test_fig7_baseline_per_app_band(panels):
    """Per-app counts of the baseline panel land within 2x of the
    paper's (the per-run durations were calibrated on this panel, the
    agreement beyond a factor ~1.3 is the model's own doing)."""
    ours = panels["ft-ftree-linear"].runs
    for app, paper in PAPER_BASELINE_RUNS.items():
        assert paper / 2 <= ours[app] <= paper * 2, (app, ours[app], paper)


def test_fig7_interference_is_directional(panels):
    """Interference can only slow applications down, never speed them
    up, and at full machine load someone must actually feel it."""
    felt = 0
    for panel in panels.values():
        for app in panel.runs:
            assert (
                panel.interfered_seconds[app]
                >= panel.solo_seconds[app] * (1 - 1e-9)
            )
            if panel.interfered_seconds[app] > panel.solo_seconds[app] * 1.01:
                felt += 1
    assert felt >= 1


def test_fig7_parx_carries_merged_profiles(panels):
    """The PARX panel re-routes against the merged demand files of all
    fourteen applications (the paper's SAR-style interface); its run
    counts must exist for every app — i.e. the re-routed fabric stayed
    fully functional under the combined profile."""
    parx = panels["hx-parx-clustered"]
    assert set(parx.runs) == {a for a, _ in CAPACITY_APPS}
    assert all(v > 0 for v in parx.runs.values())
