"""Ablation: the N-dimensional PARX generalisation (paper future work).

Section 3.2.1: "Our novel approach is generalizable to higher
dimensions, however due to the prototypic nature of it we limit
ourselves to only 2D HyperX topologies."  This bench runs the
generalisation on a 3-D HyperX and shows (a) the same dense-allocation
bandwidth recovery as in 2-D, and (b) the virtual-lane cost the paper's
footnote 8 predicted — 3-D PARX needs more than QDR's 8 lanes.
"""

from __future__ import annotations

import pytest

from repro.core.errors import DeadlockError
from repro.core.units import MIB, format_time
from repro.experiments.reporting import series_table
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.routing import DfssspRouting, audit_fabric
from repro.routing.parx_nd import NdParxPml, NdParxRouting
from repro.sim.engine import FlowSimulator
from repro.topology.hyperx import hyperx

SHAPE = (4, 4, 4)
T = 4  # nodes per switch: dense enough for single-cable collisions


def _dense_alltoall(fabric, net, pml=None) -> float:
    # Two adjacent switches' nodes, the 2-D papers' dense scenario in 3-D.
    nodes = (
        net.attached_terminals(net.switches[0])
        + net.attached_terminals(net.switches[1])
    )
    job = Job(fabric, nodes, pml=pml) if pml else Job(fabric, nodes)
    return FlowSimulator(net, mode="static").run(
        job.alltoall(1 * MIB)
    ).total_time


@pytest.fixture(scope="module")
def results():
    net = hyperx(SHAPE, T)
    dfsssp = OpenSM(net).run(DfssspRouting())
    parx = OpenSM(net, lmc=3, max_vls=32).run(NdParxRouting())
    assert audit_fabric(parx, sample_pairs=1000).clean
    return {
        "net": net,
        "dfsssp_time": _dense_alltoall(dfsssp, net),
        "parx_time": _dense_alltoall(parx, net, pml=NdParxPml()),
        "parx_vls": parx.num_vls,
    }


def test_ablation_parx_nd_bandwidth_recovery(benchmark, results, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    d, p = results["dfsssp_time"], results["parx_time"]
    write_report(
        "ablation_parx_nd",
        series_table(
            f"3-D PARX ablation — dense alltoall on a {SHAPE} HyperX, T={T}",
            [2 * T],
            {"dfsssp (minimal)": [d], "parx-nd (multi-path)": [p]},
            formatter=format_time,
        )
        + f"\nparx-nd virtual lanes: {results['parx_vls']} "
        "(exceeds QDR's 8, and at this density even HDR's 16 — "
        "paper footnote 8's warning quantified)",
    )
    # The 2-D recovery story carries to 3-D: the generalisation beats
    # minimal routing on the dense adversarial pattern.
    assert p < 0.8 * d
    benchmark.extra_info["speedup"] = d / p


def test_ablation_parx_nd_vl_cost(results):
    """Footnote 8 quantified: the 3-D engine's lane count."""
    assert results["parx_vls"] > 8

    net = hyperx(SHAPE, 1)
    with pytest.raises(DeadlockError):
        OpenSM(net, lmc=3, max_vls=8).run(NdParxRouting())
