"""Figure 2 / section 2.3: the topologies themselves.

Regenerates the structural facts the paper states:

* Fig. 2a — a 4-ary 2-tree with 16 compute nodes,
* Fig. 2b — a 2-D 4x4 HyperX with 32 compute nodes,
* Fig. 2c / §2.3 — the rewired machine: 672 nodes, 96-switch 12x8
  HyperX with 7 nodes/switch at 57.1% bisection bandwidth, a 3-level
  Fat-Tree plane, and the fault counts (15 missing HyperX cables,
  197/2662 Fat-Tree links).
"""

from __future__ import annotations

import pytest

from repro.topology import (
    bisection_fraction,
    diameter,
    hyperx,
    hyperx_bisection_fraction,
    k_ary_n_tree,
    t2hx_fattree,
    t2hx_hyperx,
)
from repro.topology.properties import average_shortest_path, cable_count


def test_fig2_construction(benchmark, write_report):
    def build():
        return (
            k_ary_n_tree(4, 2),
            hyperx((4, 4), 2),
            t2hx_hyperx(),
            t2hx_fattree(),
        )

    tree, hx4, hx, ft = benchmark(build)

    # Fig. 2a: 4-ary 2-tree with 16 compute nodes.
    assert tree.num_terminals == 16
    # Fig. 2b: 4x4 HyperX with 32 compute nodes.
    assert hx4.num_terminals == 32
    assert diameter(hx4) == 2

    # §2.3: the machine.
    assert hx.num_terminals == ft.num_terminals == 672
    assert hx.num_switches == 96

    bisect = hyperx_bisection_fraction((12, 8), 7)
    lines = [
        "Figure 2 / section 2.3 — topology facts (paper -> measured)",
        f"  12x8 HyperX bisection: paper 57.1% -> {bisect:.1%}",
        f"  HyperX diameter: 2 -> {diameter(hx)}",
        f"  Fat-Tree diameter (3 levels): 4 switch hops -> {diameter(ft)}",
        f"  HyperX switch cables: {cable_count(hx, switches_only=True)}",
        f"  Fat-Tree switch cables: {cable_count(ft, switches_only=True)}",
        f"  HyperX avg switch distance: {average_shortest_path(hx):.2f}",
        f"  Fat-Tree avg switch distance: {average_shortest_path(ft):.2f}",
    ]
    write_report("fig2_topologies", "\n".join(lines))
    benchmark.extra_info["bisection"] = bisect

    assert bisect == pytest.approx(0.571, abs=0.001)
    assert diameter(hx) == 2
    assert diameter(ft) == 4
    # The low-diameter claim of section 1: HyperX paths are shorter on
    # average than the Fat-Tree's.
    assert average_shortest_path(hx) < average_shortest_path(ft)


def test_fig2c_fault_counts(write_report):
    hx = t2hx_hyperx(with_faults=True)
    ft = t2hx_fattree(with_faults=True)
    hx_missing = 864 - cable_count(hx, switches_only=True)
    ft_clean = t2hx_fattree(with_faults=False)
    ft_missing = cable_count(ft_clean, switches_only=True) - cable_count(
        ft, switches_only=True
    )
    frac = ft_missing / cable_count(ft_clean, switches_only=True)
    write_report(
        "fig2c_faults",
        "Section 2.3 faults (paper -> measured)\n"
        f"  HyperX missing cables: 15 -> {hx_missing}\n"
        f"  Fat-Tree missing fraction: 197/2662 = 7.4% -> {frac:.1%}",
    )
    assert hx_missing == 15
    assert frac == pytest.approx(197 / 2662, abs=0.01)


def test_fig2_sampled_bisection_agrees_with_formula(benchmark):
    """The min-cut sampler agrees with Ahn et al.'s closed form on a
    half-scale instance (full scale would need hours of max-flow)."""
    net = hyperx((6, 4), 7)
    formula = hyperx_bisection_fraction((6, 4), 7)

    sampled = benchmark.pedantic(
        lambda: bisection_fraction(net, samples=25, seed=0),
        rounds=1, iterations=1,
    )
    # The axis-split candidates make the estimator exact on HyperX.
    assert sampled == pytest.approx(formula, rel=1e-6)
