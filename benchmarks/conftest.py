"""Shared fixtures and reporting helpers for the benchmark harness.

Every ``test_fig*``/``test_tab*`` module regenerates one table or figure
of the paper's evaluation.  Conventions:

* pytest-benchmark times the regeneration itself (the simulation), and
  the reproduced *scientific* numbers go into ``benchmark.extra_info``
  so ``--benchmark-json`` exports carry them;
* each module also writes a human-readable report (the same rows/series
  the paper plots) into ``benchmarks/out/``, which EXPERIMENTS.md
  references for the paper-vs-measured comparison;
* full-machine figures run at ``SCALE = 1`` (672 nodes) when cheap and
  at ``SCALE = 2`` (a 6x4 HyperX / 12-edge Fat-Tree, 168 nodes) when
  sweeping many configurations — the shape statements under test are
  scale-free (who wins, in which regime, by roughly what factor).
"""

from __future__ import annotations

import pathlib
import resource

import pytest

from repro.core.units import ru_maxrss_to_bytes

OUT_DIR = pathlib.Path(__file__).parent / "out"


def peak_rss_bytes() -> int:
    """Process high-water RSS in bytes, platform-normalized.

    ``getrusage`` reports ``ru_maxrss`` in KiB on Linux but bytes on
    macOS; :func:`repro.core.units.ru_maxrss_to_bytes` folds that quirk
    in one place so every perf JSON carries comparable numbers.
    """
    return ru_maxrss_to_bytes(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def write_report(report_dir):
    """Writer fixture: ``write_report(name, text)`` stores and echoes."""

    def _write(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")

    return _write
