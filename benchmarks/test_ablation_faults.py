"""Ablation: cable-fault sensitivity (paper §2.3's imperfect networks).

The deployed machine was missing 15 of 864 HyperX cables and 7.4% of
the Fat-Tree's links.  This sweep quantifies how much that costs each
plane — and verifies the paper's expectation that "the Fat-Tree's
undersubscription should limit the overall performance degradation"
while the routing stays fault-tolerant throughout (criterion 4).
"""

from __future__ import annotations

import pytest

from repro.core.units import GIB, MIB, format_rate
from repro.experiments.reporting import series_table
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.routing import DfssspRouting, FtreeRouting, audit_fabric
from repro.sim.engine import FlowSimulator
from repro.topology.faults import inject_cable_faults
from repro.topology.t2hx import t2hx_fattree, t2hx_hyperx
from repro.workloads.netbench import effective_bisection_bandwidth

FAULTS = (0, 15, 45, 90)
NODES = 56


def _ebb_with_faults(plane: str, num_faults: int) -> float:
    if plane == "hyperx":
        net = t2hx_hyperx()
        engine = DfssspRouting()
    else:
        net = t2hx_fattree()
        engine = FtreeRouting()
    if num_faults:
        inject_cable_faults(net, num_faults, seed=7)
    fabric = OpenSM(net).run(engine)
    audit = audit_fabric(fabric, sample_pairs=300, check_deadlock=False)
    assert audit.unreachable == 0 and audit.loops == 0
    job = Job(fabric, net.terminals[:NODES])
    return effective_bisection_bandwidth(
        Job(fabric, net.terminals[:NODES]),
        FlowSimulator(net, mode="static"),
        samples=10, size=1 * MIB, seed=0,
    )


@pytest.fixture(scope="module")
def sweep():
    return {
        (plane, f): _ebb_with_faults(plane, f)
        for plane in ("hyperx", "fattree")
        for f in FAULTS
    }


def test_ablation_fault_sensitivity(benchmark, sweep, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = {
        plane: [sweep[(plane, f)] for f in FAULTS]
        for plane in ("hyperx", "fattree")
    }
    write_report(
        "ablation_faults",
        series_table(
            f"Fault ablation — eBB of {NODES} linear nodes vs failed cables",
            FAULTS, rows, formatter=format_rate, col_name="faults",
        ),
    )

    # Routing survived every fault level (asserted inside the sweep);
    # degradation is graceful: even 6x the real fault count costs the
    # HyperX less than 35% of its fault-free eBB.
    hx0 = sweep[("hyperx", 0)]
    assert sweep[("hyperx", 90)] > 0.65 * hx0
    # The paper's actual 15 missing cables are nearly free.
    assert sweep[("hyperx", 15)] > 0.90 * hx0

    # The undersubscribed Fat-Tree absorbs its faults too.
    ft0 = sweep[("fattree", 0)]
    assert sweep[("fattree", 90)] > 0.6 * ft0


def test_ablation_parx_survives_heavy_faults():
    """PARX's limited fault tolerance (footnote 7): with 45 failed
    cables the engine may fall back to unmasked paths for some LIDs but
    must keep the fabric fully routable and deadlock-free."""
    from repro.routing import ParxRouting

    net = t2hx_hyperx()
    inject_cable_faults(net, 45, seed=3)
    fabric = OpenSM(net, lmc=2, lid_policy="quadrant").run(ParxRouting())
    audit = audit_fabric(fabric, sample_pairs=400)
    assert audit.clean
    assert fabric.num_vls <= 8
