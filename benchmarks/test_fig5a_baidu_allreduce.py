"""Figure 5a: Baidu DeepBench ring Allreduce across array lengths.

The paper sweeps 4-byte-float array lengths 0 .. 536M over all node
counts and configurations, relative to the Fat-Tree baseline.  Headline
observations (section 5.1):

* a "noteworthy problem with ftree routing, but not Fat-Tree itself,
  since SSSP mitigates the problem equally well as the HyperX" at large
  arrays,
* the HyperX planes are broadly on par elsewhere (most cells within a
  few percent),
* PARX loses on small/medium arrays (bfo software overhead) and
  catches up at the bandwidth-bound end.

Our ftree engine is fault-aware and does not reproduce the original
implementation's pathology, so the first observation appears here as
"ftree and SSSP equivalent" — recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments import BASELINE, THE_FIVE, RunSpec, relative_gain, run_capability
from repro.experiments.reporting import gain_grid
from repro.mpi.collectives import ring_allreduce
from repro.workloads.netbench import baidu_allreduce

SCALE = 2
NODE_COUNTS = (7, 14, 28, 56, 112)
#: 4-byte-float array lengths (paper: 0 .. 536M; subset).
LENGTHS = (1024, 262_144, 16_777_216, 134_217_728)


@pytest.fixture(scope="module")
def grid():
    out = {}
    for combo in THE_FIVE:
        for n in NODE_COUNTS:
            profile = ring_allreduce(n, 4.0 * 1_000_000)
            for length in LENGTHS:
                spec = RunSpec(
                    combo.key, f"baidu-allreduce:{length}", num_nodes=n,
                    reps=1, scale=SCALE, seed=0, sim_mode="static",
                )
                res = run_capability(
                    spec,
                    lambda job, sim, length=length: baidu_allreduce(
                        job, sim, length
                    ),
                    rank_phases_for_profile=profile,
                )
                out[(combo.key, n, length)] = res.best
    return out


def test_fig5a_baidu_allreduce(benchmark, grid, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    blocks = []
    gains = {}
    for combo in THE_FIVE[1:]:
        cells = {}
        for n in NODE_COUNTS:
            for length in LENGTHS:
                g = relative_gain(
                    grid[(BASELINE.key, n, length)],
                    grid[(combo.key, n, length)],
                )
                cells[(float(length), n)] = g
                gains[(combo.key, n, length)] = g
        blocks.append(
            gain_grid(
                f"Figure 5a (Baidu ring Allreduce) — {combo.label} vs baseline",
                [float(l) for l in LENGTHS], NODE_COUNTS, cells,
                row_name="array len",
            )
        )
    write_report("fig5a_baidu_allreduce", "\n\n".join(blocks))

    # Shape: the HyperX/DFSSSP planes stay within a modest band of the
    # baseline for the ring (shift-1 traffic is HyperX-friendly).
    for n in NODE_COUNTS:
        for length in LENGTHS:
            assert abs(gains[("hx-dfsssp-linear", n, length)]) < 0.35

    # PARX pays the bfo overhead on small arrays (paper: -0.3..-0.6 in
    # the upper rows of its Figure 5a panel)...
    small_parx = [gains[("hx-parx-clustered", n, 1024)] for n in NODE_COUNTS]
    assert all(g < -0.3 for g in small_parx)
    # ... and recovers substantially toward the bandwidth-bound end —
    # though its global detours still cost at the largest node counts
    # (the same trade-off as the full-scale eBB regression).
    for n in NODE_COUNTS:
        assert (
            gains[("hx-parx-clustered", n, 134_217_728)]
            > gains[("hx-parx-clustered", n, 1024)] + 0.15
        )
