"""Figure 1: mpiGraph bandwidth heatmaps for 28 nodes.

Paper numbers (average observable node-pair bandwidth, 28 intra-rack
nodes, 1 MiB messages):

* Fat-Tree / ftree:      2.26 GiB/s  (close to maximum),
* HyperX  / DFSSSP:      0.84 GiB/s  (up to 7 streams share one cable),
* HyperX  / PARX:        1.39 GiB/s  (+66% over DFSSSP).

Shape assertions: the Fat-Tree leads, minimal-routed HyperX collapses,
and PARX recovers a large fraction (>= +30% over DFSSSP) without
reaching the Fat-Tree.  Absolute values are reported side by side.
"""

from __future__ import annotations

import numpy as np

from repro.core.units import GIB, MIB, format_rate
from repro.experiments import get_combination, build_fabric, make_job
from repro.experiments.reporting import heatmap_summary
from repro.mpi.collectives import pairwise_alltoall
from repro.mpi.profiler import CommunicationProfiler
from repro.mpi.job import Job
from repro.sim.engine import FlowSimulator
from repro.workloads.netbench import mpigraph, mpigraph_average

NODES = 28
PAPER = {"ft-ftree-linear": 2.26, "hx-dfsssp-linear": 0.84,
         "hx-parx-clustered": 1.39}


def _run_panel(combo_key: str) -> float:
    combo = get_combination(combo_key)
    fabric = build_fabric(combo, scale=1)
    net = fabric.net
    # Figure 1 measures one rack's 28 nodes: a dense linear block for
    # every panel (the paper compares planes, not placements, here).
    nodes = net.terminals[:NODES]
    if combo.uses_parx:
        prof = CommunicationProfiler()
        prof.record(pairwise_alltoall(NODES, 1 * MIB))
        fabric = build_fabric(
            combo, scale=1, demands=prof.demands_for_nodes(nodes)
        )
        net = fabric.net
    from repro.experiments.configs import make_pml

    job = Job(fabric, nodes, pml=make_pml(combo))
    sim = FlowSimulator(net, mode="static")
    bw = mpigraph(job, sim, size=1 * MIB)
    return mpigraph_average(bw)


def test_fig1_mpigraph_heatmaps(benchmark, write_report):
    results: dict[str, float] = {}

    def regenerate():
        for key in PAPER:
            results[key] = _run_panel(key)
        return results

    benchmark.pedantic(regenerate, rounds=1, iterations=1)

    ft = results["ft-ftree-linear"]
    hx = results["hx-dfsssp-linear"]
    px = results["hx-parx-clustered"]

    lines = ["Figure 1 — mpiGraph, 28 nodes, 1 MiB (paper -> measured)"]
    for key, paper_gib in PAPER.items():
        lines.append(
            f"  {key:20s} paper {paper_gib:.2f} GiB/s -> "
            + heatmap_summary("measured", results[key])
        )
    gain = px / hx - 1
    lines.append(f"  PARX gain over DFSSSP: paper +66% -> measured {gain:+.0%}")
    write_report("fig1_mpigraph", "\n".join(lines))

    benchmark.extra_info.update(
        {k: v / GIB for k, v in results.items()} | {"parx_gain": gain}
    )

    # Shape: FT best, DFSSSP-HyperX collapses, PARX recovers >= 30%.
    assert ft > px > hx
    assert hx < 0.62 * ft  # the minimal-routing collapse
    assert gain > 0.30


def test_fig1_bottleneck_cause(write_report):
    """The paper's explanation: 'up to seven traffic streams may share a
    single cable'.  Verify directly: the 14-node case puts 7+7 nodes on
    two HyperX switches joined by ONE cable."""
    combo = get_combination("hx-dfsssp-linear")
    fabric = build_fabric(combo, scale=1)
    net = fabric.net
    nodes = net.terminals[:14]
    sw = {net.attached_switch(t) for t in nodes}
    assert len(sw) == 2
    a, b = sorted(sw)
    assert len(net.links_between(a, b)) == 1  # a single QDR cable
    # All 7 cross-switch flows of a shift pattern share it.
    job = Job(fabric, nodes)
    paths = [job._path(nodes[i], nodes[i + 7], 0) for i in range(7)]
    cable = net.links_between(a, b)[0].id
    assert all(cable in p for p in paths)
    write_report(
        "fig1_bottleneck",
        "14-node HyperX case: 7 streams confirmed on one cable "
        f"(link {cable}) — the Figure 1 collapse mechanism.",
    )
