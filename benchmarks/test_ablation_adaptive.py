"""Ablation: what would adaptive routing (DAL/UGAL) have done?

The paper repeatedly notes its static PARX is a stop-gap: "Future
HyperX deployments use AR, making our static routing prototype
obsolete" (footnote 3) and "will be replaced by true adaptive routing
... yielding even better results than ours" (conclusion).  This bench
quantifies that expectation on the adversarial dense pattern: the
UGAL-style adaptive router (minimal + Valiant candidates, least
congested wins) must beat minimal-routed DFSSSP and at least match
static PARX.
"""

from __future__ import annotations

import pytest

from repro.core.units import MIB, format_time
from repro.experiments import build_fabric, get_combination
from repro.experiments.configs import make_pml
from repro.experiments.reporting import series_table
from repro.mpi.job import Job
from repro.routing.dal import DalSelector
from repro.sim.adaptive import AdaptiveFlowRouter
from repro.sim.engine import FlowSimulator
from repro.sim.flows import Message, Phase, Program

PAIRS = 7
SIZE = 1 * MIB


def _static_time(combo_key: str) -> float:
    combo = get_combination(combo_key)
    fabric = build_fabric(combo, scale=1)
    net = fabric.net
    nodes = net.terminals[: 2 * PAIRS]
    job = Job(fabric, nodes, pml=make_pml(combo))
    phase = [(i, i + PAIRS, float(SIZE)) for i in range(PAIRS)]
    return FlowSimulator(net, mode="static").run(
        job.materialize([phase], label="dense")
    ).total_time


def _adaptive_time() -> float:
    combo = get_combination("hx-dfsssp-linear")
    net = build_fabric(combo, scale=1).net
    nodes = net.terminals[: 2 * PAIRS]
    router = AdaptiveFlowRouter(net, DalSelector(net, num_detours=6, seed=0))
    msgs = [
        Message(nodes[i], nodes[i + PAIRS], float(SIZE),
                router.choose(nodes[i], nodes[i + PAIRS], float(SIZE)))
        for i in range(PAIRS)
    ]
    return FlowSimulator(net, mode="static").run(
        Program([Phase(msgs)], label="adaptive")
    ).total_time


@pytest.fixture(scope="module")
def times():
    return {
        "dfsssp (static minimal)": _static_time("hx-dfsssp-linear"),
        "parx (static multi-path)": _static_time("hx-parx-clustered"),
        "dal/ugal (adaptive)": _adaptive_time(),
    }


def test_ablation_adaptive_routing(benchmark, times, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_report(
        "ablation_adaptive",
        series_table(
            "Adaptive-routing ablation — 7 dense pairs, 1 MiB",
            [2 * PAIRS], {k: [v] for k, v in times.items()},
            formatter=format_time,
        ),
    )
    dfsssp = times["dfsssp (static minimal)"]
    parx = times["parx (static multi-path)"]
    adaptive = times["dal/ugal (adaptive)"]

    # Both mitigation families clearly beat minimal static routing.
    assert adaptive < 0.7 * dfsssp
    assert parx < 0.7 * dfsssp
    # At *flow* granularity (one routing decision per flow, no packet
    # re-balancing) UGAL cannot beat PARX here: PARX's ingested profile
    # makes it an oracle for this known pattern.  Real per-packet DAL
    # would re-balance continuously — the reason the paper still calls
    # AR the production answer.
    assert dfsssp > adaptive >= parx * 0.9

    benchmark.extra_info.update(
        {"dfsssp": dfsssp, "parx": parx, "adaptive": adaptive}
    )


def test_ablation_adaptive_spreads_flows(write_report):
    """Mechanism check: the adaptive router actually uses >= 3 distinct
    inter-switch routes for the 7 colliding flows."""
    combo = get_combination("hx-dfsssp-linear")
    net = build_fabric(combo, scale=1).net
    nodes = net.terminals[: 2 * PAIRS]
    router = AdaptiveFlowRouter(net, DalSelector(net, num_detours=6, seed=0))
    routes = {
        router.choose(nodes[i], nodes[i + PAIRS], float(SIZE))
        for i in range(PAIRS)
    }
    assert len(routes) >= 3
    write_report(
        "ablation_adaptive_spread",
        f"adaptive router used {len(routes)} distinct routes for "
        f"{PAIRS} colliding flows",
    )
