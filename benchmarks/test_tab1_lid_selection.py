"""Table 1 + Figure 3: the quadrant-based LID selection semantics.

Regenerates the paper's Table 1 from first principles on the full 12x8
HyperX: for every (source quadrant, destination quadrant) pair the
small-message LID choices must route minimally and — for same- and
adjacent-quadrant pairs — the large-message choices must force a
detour (Figure 3b), while providing the extra path diversity the paper
claims (D1/2 non-overlapping paths in the first dimension).
"""

from __future__ import annotations

import itertools

from repro.experiments import build_fabric, get_combination
from repro.routing.parx import LARGE_LID_CHOICE, SMALL_LID_CHOICE
from repro.topology.hyperx import hyperx_quadrant


def _terminals_by_quadrant(net):
    out: dict[int, list[int]] = {0: [], 1: [], 2: [], 3: []}
    for t in net.terminals:
        coord = net.node_meta(net.attached_switch(t))["coord"]
        out[hyperx_quadrant(coord, (12, 8))].append(t)
    return out


def test_tab1_selection_semantics(benchmark, write_report):
    combo = get_combination("hx-parx-clustered")
    fabric = benchmark.pedantic(
        lambda: build_fabric(combo, scale=1, with_faults=False, seed=99),
        rounds=1, iterations=1,
    )
    net = fabric.net
    byq = _terminals_by_quadrant(net)

    rows = ["Table 1 — verified LID semantics on the 12x8 HyperX",
            "  (s,d) quadrants | small LIDs (minimal?) | large LIDs (detour?)"]
    violations = []
    for sq, dq in itertools.product(range(4), range(4)):
        src = byq[sq][0]
        dst = byq[dq][-1]
        hops = {i: net.path_hops(fabric.path(src, dst, i)) for i in range(4)}
        minimal = min(hops.values())
        small_ok = all(hops[i] == minimal for i in SMALL_LID_CHOICE[(sq, dq)])
        # Detours are only possible for non-diagonal quadrant pairs.
        diagonal = (sq, dq) in ((0, 2), (2, 0), (1, 3), (3, 1))
        if diagonal:
            large_ok = True
            note = "diagonal: no detour exists"
        else:
            large_ok = all(
                hops[i] > minimal for i in LARGE_LID_CHOICE[(sq, dq)]
            )
            note = "detour"
        rows.append(
            f"  Q{sq}->Q{dq}: small {SMALL_LID_CHOICE[(sq, dq)]} "
            f"{'minimal ok' if small_ok else 'VIOLATION'} | large "
            f"{LARGE_LID_CHOICE[(sq, dq)]} "
            f"{note if large_ok else 'VIOLATION'}"
        )
        if not (small_ok and large_ok):
            violations.append((sq, dq))
    write_report("tab1_lid_selection", "\n".join(rows))
    assert not violations


def test_fig3_path_diversity(write_report):
    """Figure 3b's point: forcing traffic out of the left half raises
    the number of non-overlapping switch paths between two left-half
    switches from <= 2 (minimal) toward D1/2."""
    combo = get_combination("hx-parx-clustered")
    fabric = build_fabric(combo, scale=1, with_faults=False, seed=99)
    net = fabric.net
    byq = _terminals_by_quadrant(net)
    src, dst = byq[1][0], byq[1][-1]  # both in Q1 (left half)

    def switch_links(i):
        return frozenset(
            l for l in fabric.path(src, dst, i)
            if net.is_switch(net.link(l).src) and net.is_switch(net.link(l).dst)
        )

    small = [switch_links(i) for i in SMALL_LID_CHOICE[(1, 1)]]
    large = [switch_links(i) for i in LARGE_LID_CHOICE[(1, 1)]]
    # The paper (footnote 4) promises paths that "may be partially or
    # fully disjoint": the detour paths must be fully disjoint from
    # every minimal path (they live in the other halves), giving at
    # least three distinct link sets overall.
    for s, l in itertools.product(small, large):
        assert not (s & l), "a PARX detour path reuses minimal-path links"
    distinct = len({*small, *large})
    assert distinct >= 3
    write_report(
        "fig3_path_diversity",
        f"Q1->Q1 pair: {distinct} distinct switch-link paths via the four "
        "LIDs; both forced detours are fully link-disjoint from both "
        "minimal paths — Figure 3 realised.",
    )
