"""Ablation: all deadlock-free routing engines on one HyperX, head-to-head.

Section 6 lists the deterministic deadlock-free options for InfiniBand:
DFSSSP, LASH, Nue, Up*/Down* — plus the paper's PARX and the oblivious
Valiant.  This bench races them all on the half-scale plane (6x4, 168 nodes;
LASH's per-pair layering and Nue's per-relaxation cycle checks are
quadratic-ish at full scale) across three workload archetypes (dense adversarial shift, uniform random
permutation, 28-node Alltoall) and audits their path quality and
virtual-lane footprints — the engineering trade-off table the paper's
related-work section describes in prose.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import make_rng
from repro.core.units import MIB, format_time
from repro.experiments.reporting import series_table
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.routing import (
    DfssspRouting,
    LashRouting,
    NueRouting,
    ParxRouting,
    UpDownRouting,
    ValiantRouting,
    audit_fabric,
)
from repro.sim.engine import FlowSimulator
from repro.topology.t2hx import t2hx_hyperx


def _engines():
    return {
        "updown": (UpDownRouting(), {}),
        "dfsssp": (DfssspRouting(), {}),
        "lash": (LashRouting(), {}),
        "nue-2vl": (NueRouting(num_vls=2), {}),
        "valiant": (ValiantRouting(seed=0), {}),
        "parx": (ParxRouting(), {"lmc": 2, "lid_policy": "quadrant"}),
    }


SCALE = 2


@pytest.fixture(scope="module")
def raced():
    out = {}
    for name, (engine, sm_kwargs) in _engines().items():
        net = t2hx_hyperx(scale=SCALE)
        fabric = OpenSM(net, **sm_kwargs).run(engine)
        audit = audit_fabric(fabric, sample_pairs=800, check_deadlock=False)
        assert audit.unreachable == 0 and audit.loops == 0, name

        sim = FlowSimulator(net, mode="static")
        nodes = net.terminals[:14]
        job = Job(fabric, nodes)
        dense = sim.run(
            job.materialize([[(i, i + 7, 1.0 * MIB) for i in range(7)]])
        ).total_time

        rng = make_rng(1)
        perm = rng.permutation(56)
        job56 = Job(fabric, net.terminals[:56])
        random_pairs = [
            (i, int(perm[i]), 1.0 * MIB) for i in range(56) if i != perm[i]
        ]
        uniform = sim.run(job56.materialize([random_pairs])).total_time

        alltoall = sim.run(Job(fabric, net.terminals[:28]).alltoall(256 * 1024)).total_time

        out[name] = {
            "dense": dense,
            "uniform": uniform,
            "alltoall": alltoall,
            "vls": fabric.num_vls,
            "minimal_frac": audit.minimal_pairs / audit.pairs_checked,
        }
    return out


def test_ablation_engine_tournament(benchmark, raced, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = {
        f"{name} (vls={d['vls']}, min={d['minimal_frac']:.0%})": [
            d["dense"], d["uniform"], d["alltoall"]
        ]
        for name, d in raced.items()
    }
    write_report(
        "ablation_engines",
        series_table(
            "Engine tournament on the 6x4 HyperX "
            "(columns: dense 7-pair shift, 56-node random perm, "
            "28-node Alltoall 256KiB)",
            [0, 1, 2], rows, formatter=format_time, col_name="workload",
        ),
    )

    # Shape claims from the related-work discussion:
    # 1. Minimal engines (dfsssp, lash) tie on path quality.
    assert raced["dfsssp"]["minimal_frac"] == 1.0
    assert raced["lash"]["minimal_frac"] == 1.0
    # 2. PARX and Valiant beat every minimal engine on the dense shift.
    minimal_best = min(
        raced[n]["dense"] for n in ("dfsssp", "lash", "nue-2vl")
    )
    assert raced["parx"]["dense"] < minimal_best
    assert raced["valiant"]["dense"] < minimal_best
    # 3. Valiant pays for its robustness on friendly uniform traffic.
    assert raced["valiant"]["uniform"] > raced["dfsssp"]["uniform"]
    # 4. Up*/Down* concentrates near the root: never better than DFSSSP
    #    on the uniform permutation.
    assert raced["updown"]["uniform"] >= raced["dfsssp"]["uniform"] * 0.99
    # 5. Lane budgets: Nue respects its fixed 2; the others fit QDR's 8.
    assert raced["nue-2vl"]["vls"] == 2
    for name, d in raced.items():
        assert d["vls"] <= 8, name
