"""Performance benchmarks of the library's hot primitives.

Unlike the ``test_fig*`` modules (which regenerate the paper's science),
these time the engineering: routing a full-size plane, the max-min
fairness kernel, table-walking path resolution, and the virtual-lane
layering.  They guard against performance regressions — the budgets
asserted are ~10x above current numbers, failing only on algorithmic
accidents, not machine noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import make_rng
from repro.ib.subnet_manager import OpenSM
from repro.routing.dfsssp import DfssspRouting
from repro.routing.dijkstra import tree_to_destination
from repro.routing.parx import ParxRouting
from repro.sim.fairness import max_min_fair_rates
from repro.topology.t2hx import t2hx_hyperx


@pytest.fixture(scope="module")
def plane():
    net = t2hx_hyperx()
    fabric = OpenSM(net).run(DfssspRouting())
    return net, fabric


def test_perf_dijkstra_full_plane(benchmark, plane):
    """One destination tree over the 96-switch 12x8 lattice."""
    net, _ = plane
    weights = np.ones(len(net.links))

    result = benchmark(lambda: tree_to_destination(net, net.switches[0], weights))
    parent, hops = result
    assert len(parent) == net.num_switches - 1
    assert benchmark.stats["mean"] < 0.05


def test_perf_dfsssp_full_routing(benchmark, plane):
    """Routing the full 672-node HyperX plane with DFSSSP + VL layering."""
    net, _ = plane

    fabric = benchmark.pedantic(
        lambda: OpenSM(t2hx_hyperx()).run(DfssspRouting()),
        rounds=1, iterations=1,
    )
    assert fabric.num_vls <= 8
    assert benchmark.stats["mean"] < 30.0


def test_perf_parx_full_routing(benchmark):
    """PARX's 4-LID routing of the full plane (the paper re-routes the
    fabric before every job start, so this is a production path)."""
    fabric = benchmark.pedantic(
        lambda: OpenSM(
            t2hx_hyperx(), lmc=2, lid_policy="quadrant"
        ).run(ParxRouting()),
        rounds=1, iterations=1,
    )
    assert fabric.num_vls <= 8
    assert benchmark.stats["mean"] < 120.0


def test_perf_fairness_large(benchmark):
    """The max-min kernel with 20k flows over 2k links (an all-to-all's
    worth of concurrent flows)."""
    rng = make_rng(0)
    n_links, n_flows = 2000, 20_000
    flows = [
        list(rng.choice(n_links, size=5, replace=False)) for _ in range(n_flows)
    ]
    caps = np.full(n_links, 3.4e9)

    rates = benchmark(lambda: max_min_fair_rates(flows, caps))
    assert (rates > 0).all()
    assert benchmark.stats["mean"] < 5.0


def test_perf_path_resolution(benchmark, plane):
    """Table-walking 1000 random pairs (the simulator's inner loop)."""
    net, fabric = plane
    rng = make_rng(1)
    terms = net.terminals
    pairs = [
        (terms[int(a)], terms[int(b)])
        for a, b in rng.integers(0, len(terms), (1000, 2))
        if a != b
    ]

    def resolve_all():
        return [fabric.path(a, b) for a, b in pairs]

    paths = benchmark(resolve_all)
    assert all(p for p in paths)
    assert benchmark.stats["mean"] < 1.0


def test_perf_alltoall_simulation(benchmark, plane):
    """Simulating a 112-rank 1 MiB Alltoall (111 phases, 12k flows)."""
    from repro.core.units import MIB
    from repro.mpi.job import Job
    from repro.sim.engine import FlowSimulator

    net, fabric = plane
    job = Job(fabric, net.terminals[:112])
    sim = FlowSimulator(net, mode="static")
    program = job.alltoall(1 * MIB)

    result = benchmark.pedantic(lambda: sim.run(program), rounds=1, iterations=1)
    assert result.total_time > 0
    assert benchmark.stats["mean"] < 60.0
