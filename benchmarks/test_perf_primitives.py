"""Performance benchmarks of the library's hot primitives.

Unlike the ``test_fig*`` modules (which regenerate the paper's science),
these time the engineering: routing a full-size plane, the max-min
fairness kernel, table-walking path resolution, and the virtual-lane
layering.  They guard against performance regressions — the budgets
asserted are ~10x above current numbers, failing only on algorithmic
accidents, not machine noise.

The incremental-fairness cases additionally assert *speedups* against
the pre-engine implementations (kept in-tree as executable specs).
``PERF_SPEEDUP_FLOOR`` relaxes those ratios for noisy shared runners —
the CI perf-smoke job sets it to 3 so only order-of-magnitude
regressions fail the build.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.rng import make_rng
from repro.core.units import MIB
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.routing.dfsssp import DfssspRouting
from repro.routing.dijkstra import tree_to_destination
from repro.routing.parx import ParxRouting
from repro.sim.engine import FlowSimulator
from repro.sim.fairness import (
    FairnessProblem,
    max_min_fair_rates,
    reference_max_min_fair_rates,
)
from repro.topology.t2hx import t2hx_hyperx

#: Required new-vs-reference speedup for the incremental engine cases.
#: Default 10 (the engine's design target); CI smoke relaxes to 3.
SPEEDUP_FLOOR = float(os.environ.get("PERF_SPEEDUP_FLOOR", "10"))


@pytest.fixture(scope="module")
def plane():
    net = t2hx_hyperx()
    fabric = OpenSM(net).run(DfssspRouting())
    return net, fabric


def test_perf_dijkstra_full_plane(benchmark, plane):
    """One destination tree over the 96-switch 12x8 lattice."""
    net, _ = plane
    weights = np.ones(len(net.links))

    result = benchmark(lambda: tree_to_destination(net, net.switches[0], weights))
    parent, hops = result
    assert len(parent) == net.num_switches - 1
    assert benchmark.stats["mean"] < 0.05


def test_perf_dfsssp_full_routing(benchmark, plane):
    """Routing the full 672-node HyperX plane with DFSSSP + VL layering."""
    net, _ = plane

    fabric = benchmark.pedantic(
        lambda: OpenSM(t2hx_hyperx()).run(DfssspRouting()),
        rounds=1, iterations=1,
    )
    assert fabric.num_vls <= 8
    assert benchmark.stats["mean"] < 30.0


def test_perf_parx_full_routing(benchmark):
    """PARX's 4-LID routing of the full plane (the paper re-routes the
    fabric before every job start, so this is a production path)."""
    fabric = benchmark.pedantic(
        lambda: OpenSM(
            t2hx_hyperx(), lmc=2, lid_policy="quadrant"
        ).run(ParxRouting()),
        rounds=1, iterations=1,
    )
    assert fabric.num_vls <= 8
    assert benchmark.stats["mean"] < 120.0


def test_perf_fairness_large(benchmark):
    """The max-min kernel with 20k flows over 2k links (an all-to-all's
    worth of concurrent flows)."""
    rng = make_rng(0)
    n_links, n_flows = 2000, 20_000
    flows = [
        list(rng.choice(n_links, size=5, replace=False)) for _ in range(n_flows)
    ]
    caps = np.full(n_links, 3.4e9)

    rates = benchmark(lambda: max_min_fair_rates(flows, caps))
    assert (rates > 0).all()
    assert benchmark.stats["mean"] < 5.0


def test_perf_path_resolution(benchmark, plane):
    """Table-walking 1000 random pairs (the simulator's inner loop)."""
    net, fabric = plane
    rng = make_rng(1)
    terms = net.terminals
    pairs = [
        (terms[int(a)], terms[int(b)])
        for a, b in rng.integers(0, len(terms), (1000, 2))
        if a != b
    ]

    def resolve_all():
        return [fabric.path(a, b) for a, b in pairs]

    paths = benchmark(resolve_all)
    assert all(p for p in paths)
    assert benchmark.stats["mean"] < 1.0


def test_perf_alltoall_simulation(benchmark, plane):
    """Simulating a 112-rank 1 MiB Alltoall (111 phases, 12k flows)."""
    net, fabric = plane
    job = Job(fabric, net.terminals[:112])
    sim = FlowSimulator(net, mode="static")
    program = job.alltoall(1 * MIB)

    result = benchmark.pedantic(lambda: sim.run(program), rounds=1, iterations=1)
    assert result.total_time > 0
    assert benchmark.stats["mean"] < 60.0


# --- the incremental fairness engine -----------------------------------------


@pytest.fixture(scope="module")
def faulted_dynamic():
    """Full 672-node faulted plane + its most event-rich all-to-all phase.

    Dynamic-mode cost is driven by completion events, so the speedup
    case measures the phase with the most of them (fault-skewed rates
    stagger the completions); picking it by scan instead of hard-coding
    an index keeps the benchmark meaningful if fault seeds change.
    """
    net = t2hx_hyperx(with_faults=True)
    fabric = OpenSM(net).run(DfssspRouting())
    job = Job(fabric, net.terminals)
    program = job.alltoall(1 * MIB)
    sim = FlowSimulator(net, mode="dynamic")

    counter = [0]
    orig = FairnessProblem.solve_classes

    def counting(self, counts):
        counter[0] += 1
        return orig(self, counts)

    FairnessProblem.solve_classes = counting  # type: ignore[method-assign]
    try:
        events = []
        for i, ph in enumerate(program.phases):
            counter[0] = 0
            sim.run_phase(ph)
            events.append((counter[0], i))
    finally:
        FairnessProblem.solve_classes = orig  # type: ignore[method-assign]
    n_events, best = max(events)
    return net, sim, program.phases[best], n_events


def _legacy_dynamic_phase(sim, net, phase) -> float:
    """The pre-engine dynamic ``run_phase``: per-message Python loops and
    a from-scratch reference fairness solve per completion event."""
    msgs = phase.messages
    sim.state.refresh(force=True)
    for m in msgs:
        assert not sim.state.disabled_on(m.path)
        if m.size > 0:
            assert not sim.state.nonpositive_on(m.path)
    hops_cache: dict = {}

    def hops(p):
        if p not in hops_cache:
            hops_cache[p] = net.path_hops(p)
        return hops_cache[p]

    const = np.array(
        [sim.latency.constant_time(hops(m.path), m.overhead) for m in msgs]
    )
    sizes = np.array([m.size for m in msgs], dtype=float)
    paths = [m.path for m in msgs]
    capacity = sim.state.capacities
    remaining = sizes.copy()
    finish = np.zeros(len(msgs))
    active = remaining > 0
    now = 0.0
    while active.any():
        idx = np.flatnonzero(active)
        rates = reference_max_min_fair_rates(
            [paths[i] for i in idx], capacity
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            ttf = remaining[idx] / rates
        dt = float(ttf.min())
        now += dt
        remaining[idx] -= rates * dt
        done = idx[remaining[idx] <= 1e-6 * sizes[idx] + 1e-9]
        finish[done] = now
        remaining[done] = 0.0
        active[done] = False
    return float((const + finish).max())


def test_perf_dynamic_alltoall_phase(benchmark, faulted_dynamic, report_dir):
    """Dynamic-mode 672-node all-to-all phase: the engine's raison
    d'etre.  Asserts the incremental engine beats the per-event-rebuild
    implementation by ``SPEEDUP_FLOOR`` x with identical results."""
    net, sim, phase, n_events = faulted_dynamic

    result = benchmark(lambda: sim.run_phase(phase))

    legacy_best = np.inf
    legacy_duration = 0.0
    for _ in range(3):
        t0 = time.perf_counter()
        legacy_duration = _legacy_dynamic_phase(sim, net, phase)
        legacy_best = min(legacy_best, time.perf_counter() - t0)
    # The speedup must not change the science.
    assert result.duration == pytest.approx(legacy_duration, rel=1e-9)

    new_mean = benchmark.stats["mean"]
    speedup = legacy_best / new_mean
    payload = {
        "events": n_events,
        "messages": len(phase.messages),
        "new_mean_s": new_mean,
        "legacy_best_s": legacy_best,
        "speedup": speedup,
        "floor": SPEEDUP_FLOOR,
    }
    benchmark.extra_info.update(payload)
    (report_dir / "perf_dynamic_phase.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert speedup >= SPEEDUP_FLOOR, payload


def test_perf_incremental_rates_vs_rebuild(benchmark, report_dir):
    """``FairnessProblem.rates(mask)`` vs building the masked sub-problem
    from scratch (what every event did before the engine)."""
    rng = make_rng(0)
    n_links, n_flows = 2000, 20_000
    flows = [
        list(rng.choice(n_links, size=5, replace=False))
        for _ in range(n_flows)
    ]
    caps = np.full(n_links, 3.4e9)
    prob = FairnessProblem(flows, caps)
    mask = rng.random(n_flows) < 0.6
    prob.rates(mask)  # warm: emits the bottleneck-structure hint

    rates = benchmark(lambda: prob.rates(mask))
    assert (rates[mask] > 0).all()
    assert (rates[~mask] == 0).all()

    sub = [f for f, m in zip(flows, mask) if m]
    rebuild_best = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        FairnessProblem(sub, caps).rates()
        rebuild_best = min(rebuild_best, time.perf_counter() - t0)

    speedup = rebuild_best / benchmark.stats["mean"]
    floor = 3.0 * SPEEDUP_FLOOR / 10.0
    payload = {
        "flows": n_flows,
        "active": int(mask.sum()),
        "masked_mean_s": benchmark.stats["mean"],
        "rebuild_best_s": rebuild_best,
        "speedup": speedup,
        "floor": floor,
    }
    benchmark.extra_info.update(payload)
    (report_dir / "perf_incremental_rates.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert speedup >= floor, payload


def test_perf_path_cache_hit(benchmark, plane, report_dir):
    """``Fabric.path`` memo hits: the collective builders resolve the
    same pairs once per phase, so the hit path must be dict-cheap."""
    net, fabric = plane
    rng = make_rng(1)
    terms = net.terminals
    pairs = [
        (terms[int(a)], terms[int(b)])
        for a, b in rng.integers(0, len(terms), (1000, 2))
        if a != b
    ]

    t0 = time.perf_counter()
    cold = [fabric.path(a, b) for a, b in pairs]
    cold_s = time.perf_counter() - t0

    paths = benchmark(lambda: [fabric.path(a, b) for a, b in pairs])
    assert paths == cold
    payload = {
        "pairs": len(pairs),
        "cold_s": cold_s,
        "hit_mean_s": benchmark.stats["mean"],
        "speedup": cold_s / benchmark.stats["mean"],
    }
    benchmark.extra_info.update(payload)
    (report_dir / "perf_path_cache.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert benchmark.stats["mean"] < 0.05
