"""Performance benchmarks of the library's hot primitives.

Unlike the ``test_fig*`` modules (which regenerate the paper's science),
these time the engineering: routing a full-size plane, the max-min
fairness kernel, table-walking path resolution, and the virtual-lane
layering.  They guard against performance regressions — the budgets
asserted are ~10x above current numbers, failing only on algorithmic
accidents, not machine noise.

The incremental-fairness cases additionally assert *speedups* against
the pre-engine implementations (kept in-tree as executable specs).
``PERF_SPEEDUP_FLOOR`` relaxes those ratios for noisy shared runners —
the CI perf-smoke job sets it to 3 so only order-of-magnitude
regressions fail the build.
"""

from __future__ import annotations

import hashlib
import json
import os
import resource
import time

import numpy as np
import pytest

from repro.core.rng import make_rng
from repro.core.units import MIB, ru_maxrss_to_bytes
from repro.ib.subnet_manager import OpenSM, _snapshot_paths, resweep
from repro.mpi.job import Job
from repro.routing.dfsssp import DfssspRouting
from repro.routing.dijkstra import tree_to_destination
from repro.routing.minhop import MinHopRouting
from repro.routing.parx import ParxRouting
from repro.sim.engine import FlowSimulator
from repro.sim.fairness import (
    FairnessProblem,
    max_min_fair_rates,
    reference_max_min_fair_rates,
)
from repro.topology.t2hx import t2hx_hyperx

#: Required new-vs-reference speedup for the incremental engine cases.
#: Default 10 (the engine's design target); CI smoke relaxes to 3.
SPEEDUP_FLOOR = float(os.environ.get("PERF_SPEEDUP_FLOOR", "10"))

#: Required batched-vs-sequential cold-sweep speedup (the batched
#: kernel's acceptance bar is 3x over the pinned sequential timings).
BATCH_SPEEDUP_FLOOR = float(os.environ.get("PERF_BATCH_SPEEDUP_FLOOR", "3"))


def _peak_rss_bytes() -> int:
    """Process high-water RSS, normalized for the ru_maxrss unit quirk
    (KiB on Linux, bytes on macOS)."""
    return ru_maxrss_to_bytes(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@pytest.fixture(scope="module")
def plane():
    net = t2hx_hyperx()
    fabric = OpenSM(net).run(DfssspRouting())
    return net, fabric


def test_perf_dijkstra_full_plane(benchmark, plane):
    """One destination tree over the 96-switch 12x8 lattice."""
    net, _ = plane
    weights = np.ones(len(net.links))

    result = benchmark(lambda: tree_to_destination(net, net.switches[0], weights))
    parent, hops = result
    assert len(parent) == net.num_switches - 1
    assert benchmark.stats["mean"] < 0.05


def test_perf_dfsssp_full_routing(benchmark, plane):
    """Routing the full 672-node HyperX plane with DFSSSP + VL layering."""
    net, _ = plane

    fabric = benchmark.pedantic(
        lambda: OpenSM(t2hx_hyperx()).run(DfssspRouting()),
        rounds=1, iterations=1,
    )
    assert fabric.num_vls <= 8
    assert benchmark.stats["mean"] < 30.0


def test_perf_parx_full_routing(benchmark):
    """PARX's 4-LID routing of the full plane (the paper re-routes the
    fabric before every job start, so this is a production path)."""
    fabric = benchmark.pedantic(
        lambda: OpenSM(
            t2hx_hyperx(), lmc=2, lid_policy="quadrant"
        ).run(ParxRouting()),
        rounds=1, iterations=1,
    )
    assert fabric.num_vls <= 8
    assert benchmark.stats["mean"] < 120.0


def test_perf_fairness_large(benchmark):
    """The max-min kernel with 20k flows over 2k links (an all-to-all's
    worth of concurrent flows)."""
    rng = make_rng(0)
    n_links, n_flows = 2000, 20_000
    flows = [
        list(rng.choice(n_links, size=5, replace=False)) for _ in range(n_flows)
    ]
    caps = np.full(n_links, 3.4e9)

    rates = benchmark(lambda: max_min_fair_rates(flows, caps))
    assert (rates > 0).all()
    assert benchmark.stats["mean"] < 5.0


def test_perf_path_resolution(benchmark, plane):
    """Table-walking 1000 random pairs (the simulator's inner loop)."""
    net, fabric = plane
    rng = make_rng(1)
    terms = net.terminals
    pairs = [
        (terms[int(a)], terms[int(b)])
        for a, b in rng.integers(0, len(terms), (1000, 2))
        if a != b
    ]

    def resolve_all():
        return [fabric.path(a, b) for a, b in pairs]

    paths = benchmark(resolve_all)
    assert all(p for p in paths)
    assert benchmark.stats["mean"] < 1.0


def test_perf_alltoall_simulation(benchmark, plane):
    """Simulating a 112-rank 1 MiB Alltoall (111 phases, 12k flows)."""
    net, fabric = plane
    job = Job(fabric, net.terminals[:112])
    sim = FlowSimulator(net, mode="static")
    program = job.alltoall(1 * MIB)

    result = benchmark.pedantic(lambda: sim.run(program), rounds=1, iterations=1)
    assert result.total_time > 0
    assert benchmark.stats["mean"] < 60.0


# --- the incremental fairness engine -----------------------------------------


@pytest.fixture(scope="module")
def faulted_dynamic():
    """Full 672-node faulted plane + its most event-rich all-to-all phase.

    Dynamic-mode cost is driven by completion events, so the speedup
    case measures the phase with the most of them (fault-skewed rates
    stagger the completions); picking it by scan instead of hard-coding
    an index keeps the benchmark meaningful if fault seeds change.
    """
    net = t2hx_hyperx(with_faults=True)
    fabric = OpenSM(net).run(DfssspRouting())
    job = Job(fabric, net.terminals)
    program = job.alltoall(1 * MIB)
    sim = FlowSimulator(net, mode="dynamic")

    counter = [0]
    orig = FairnessProblem.solve_classes

    def counting(self, counts):
        counter[0] += 1
        return orig(self, counts)

    FairnessProblem.solve_classes = counting  # type: ignore[method-assign]
    try:
        events = []
        for i, ph in enumerate(program.phases):
            counter[0] = 0
            sim.run_phase(ph)
            events.append((counter[0], i))
    finally:
        FairnessProblem.solve_classes = orig  # type: ignore[method-assign]
    n_events, best = max(events)
    return net, sim, program.phases[best], n_events


def _legacy_dynamic_phase(sim, net, phase) -> float:
    """The pre-engine dynamic ``run_phase``: per-message Python loops and
    a from-scratch reference fairness solve per completion event."""
    msgs = phase.messages
    sim.state.refresh(force=True)
    for m in msgs:
        assert not sim.state.disabled_on(m.path)
        if m.size > 0:
            assert not sim.state.nonpositive_on(m.path)
    hops_cache: dict = {}

    def hops(p):
        if p not in hops_cache:
            hops_cache[p] = net.path_hops(p)
        return hops_cache[p]

    const = np.array(
        [sim.latency.constant_time(hops(m.path), m.overhead) for m in msgs]
    )
    sizes = np.array([m.size for m in msgs], dtype=float)
    paths = [m.path for m in msgs]
    capacity = sim.state.capacities
    remaining = sizes.copy()
    finish = np.zeros(len(msgs))
    active = remaining > 0
    now = 0.0
    while active.any():
        idx = np.flatnonzero(active)
        rates = reference_max_min_fair_rates(
            [paths[i] for i in idx], capacity
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            ttf = remaining[idx] / rates
        dt = float(ttf.min())
        now += dt
        remaining[idx] -= rates * dt
        done = idx[remaining[idx] <= 1e-6 * sizes[idx] + 1e-9]
        finish[done] = now
        remaining[done] = 0.0
        active[done] = False
    return float((const + finish).max())


def test_perf_dynamic_alltoall_phase(benchmark, faulted_dynamic, report_dir):
    """Dynamic-mode 672-node all-to-all phase: the engine's raison
    d'etre.  Asserts the incremental engine beats the per-event-rebuild
    implementation by ``SPEEDUP_FLOOR`` x with identical results."""
    net, sim, phase, n_events = faulted_dynamic

    result = benchmark(lambda: sim.run_phase(phase))

    legacy_best = np.inf
    legacy_duration = 0.0
    for _ in range(3):
        t0 = time.perf_counter()
        legacy_duration = _legacy_dynamic_phase(sim, net, phase)
        legacy_best = min(legacy_best, time.perf_counter() - t0)
    # The speedup must not change the science.
    assert result.duration == pytest.approx(legacy_duration, rel=1e-9)

    new_mean = benchmark.stats["mean"]
    speedup = legacy_best / new_mean
    payload = {
        "events": n_events,
        "messages": len(phase.messages),
        "new_mean_s": new_mean,
        "legacy_best_s": legacy_best,
        "speedup": speedup,
        "floor": SPEEDUP_FLOOR,
    }
    benchmark.extra_info.update(payload)
    (report_dir / "perf_dynamic_phase.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert speedup >= SPEEDUP_FLOOR, payload


def test_perf_incremental_rates_vs_rebuild(benchmark, report_dir):
    """``FairnessProblem.rates(mask)`` vs building the masked sub-problem
    from scratch (what every event did before the engine)."""
    rng = make_rng(0)
    n_links, n_flows = 2000, 20_000
    flows = [
        list(rng.choice(n_links, size=5, replace=False))
        for _ in range(n_flows)
    ]
    caps = np.full(n_links, 3.4e9)
    prob = FairnessProblem(flows, caps)
    mask = rng.random(n_flows) < 0.6
    prob.rates(mask)  # warm: emits the bottleneck-structure hint

    rates = benchmark(lambda: prob.rates(mask))
    assert (rates[mask] > 0).all()
    assert (rates[~mask] == 0).all()

    sub = [f for f, m in zip(flows, mask) if m]
    rebuild_best = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        FairnessProblem(sub, caps).rates()
        rebuild_best = min(rebuild_best, time.perf_counter() - t0)

    speedup = rebuild_best / benchmark.stats["mean"]
    floor = 3.0 * SPEEDUP_FLOOR / 10.0
    payload = {
        "flows": n_flows,
        "active": int(mask.sum()),
        "masked_mean_s": benchmark.stats["mean"],
        "rebuild_best_s": rebuild_best,
        "speedup": speedup,
        "floor": floor,
    }
    benchmark.extra_info.update(payload)
    (report_dir / "perf_incremental_rates.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert speedup >= floor, payload


def test_perf_path_cache_hit(benchmark, plane, report_dir):
    """``Fabric.path`` memo hits: the collective builders resolve the
    same pairs once per phase, so the hit path must be dict-cheap."""
    net, fabric = plane
    rng = make_rng(1)
    terms = net.terminals
    pairs = [
        (terms[int(a)], terms[int(b)])
        for a, b in rng.integers(0, len(terms), (1000, 2))
        if a != b
    ]

    t0 = time.perf_counter()
    cold = [fabric.path(a, b) for a, b in pairs]
    cold_s = time.perf_counter() - t0

    paths = benchmark(lambda: [fabric.path(a, b) for a, b in pairs])
    assert paths == cold
    payload = {
        "pairs": len(pairs),
        "cold_s": cold_s,
        "hit_mean_s": benchmark.stats["mean"],
        "speedup": cold_s / benchmark.stats["mean"],
    }
    benchmark.extra_info.update(payload)
    (report_dir / "perf_path_cache.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert benchmark.stats["mean"] < 0.05


# --- the routing-sweep engine -------------------------------------------------

#: Measurements and LFT digests of the pre-engine (dict-of-dicts,
#: per-pair-walk) implementation on this machine, captured immediately
#: before the array rewrite.  The digests are hard equality gates —
#: the engine must produce the same bytes; the seed seconds only feed
#: the speedup bookkeeping in the JSON reports (the asserted budgets
#: are absolute and sit well above the engine, well below the seed).
SEED_T2HX = {
    "parx_digest":
        "0f451536cdedb74229d0aa5f20e77208c9ce5bae15245a188612a2b536a7bb9b",
    "parx_num_vls": 4,
    "parx_seconds": 6.108,
    "resweep_digest":
        "06351e7ded50f102459e8c0b34edb87a76bd0dd87c8cba6a3cb8ea48ac6a4405",
    "resweep_seconds": 7.373,
    "resweep_report": {
        "dests_affected": 81, "entries_changed": 2930,
        "paths_changed": 20510, "pairs_total": 450912,
        "hops_before": 807282, "hops_after": 807282,
    },
}


def _lft_digest(fabric) -> str:
    return hashlib.sha256(fabric.dump_lft().encode()).hexdigest()


def _failed_used_cable(net, fabric):
    """Fail a cable on the fabric's first-to-last terminal route."""
    src = net.attached_terminals(net.switches[0])[0]
    dst = net.attached_terminals(net.switches[-1])[0]
    cable = net.link(fabric.path(src, dst)[1])
    net.disable_cable(cable.id)
    return cable


def test_perf_parx_cold_sweep(benchmark, report_dir):
    """Cold PARX sweep of the full plane on the array pipeline.

    The issue's headline case: 4-LID PARX routing of all 672 nodes,
    required >= 5x under the pre-engine 6.1 s.  The asserted budget is
    absolute (the seed implementation cannot pass it); the digest pins
    the output bytes to the seed's."""
    fabric = benchmark.pedantic(
        lambda: OpenSM(
            t2hx_hyperx(), lmc=2, lid_policy="quadrant"
        ).run(ParxRouting()),
        rounds=1, iterations=1,
    )
    assert _lft_digest(fabric) == SEED_T2HX["parx_digest"]
    assert fabric.num_vls == SEED_T2HX["parx_num_vls"]

    new_s = benchmark.stats["mean"]
    payload = {
        "new_s": new_s,
        "seed_s": SEED_T2HX["parx_seconds"],
        "speedup_vs_seed": SEED_T2HX["parx_seconds"] / new_s,
        "digest": SEED_T2HX["parx_digest"],
    }
    benchmark.extra_info.update(payload)
    (report_dir / "perf_parx_cold_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert new_s < 3.5, payload


def test_perf_registry_cold_sweeps(benchmark, report_dir):
    """Cold sweeps of the registry's fault-tolerant engines (fthx,
    fatpaths) on the full 672-node t2hx plane.

    Both engines route through the same array pipeline as PARX, so their
    cold sweeps must land in the same ballpark: budgets are ~10x above
    current numbers (fthx ~0.5 s, fatpaths ~2 s with its 4 LMC layers)
    and only catch algorithmic accidents.  VL counts are pinned exactly
    — a lane-budget regression is a routing bug, not noise."""
    from repro.routing import create_engine

    payload = {}

    def sweep(name):
        t0 = time.perf_counter()
        fabric = OpenSM(t2hx_hyperx()).run(create_engine(name))
        payload[name] = {
            "seconds": time.perf_counter() - t0,
            "num_vls": fabric.num_vls,
            "digest": _lft_digest(fabric),
        }
        return fabric

    fthx = benchmark.pedantic(
        lambda: sweep("fthx"), rounds=1, iterations=1
    )
    fatpaths = sweep("fatpaths")

    assert fthx.num_vls == 2, payload
    assert fatpaths.num_vls <= 8, payload
    assert payload["fthx"]["seconds"] < 5.0, payload
    assert payload["fatpaths"]["seconds"] < 20.0, payload

    payload["peak_rss_bytes"] = _peak_rss_bytes()
    benchmark.extra_info.update(payload)
    (report_dir / "perf_registry_cold_sweeps.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


#: Full-plane cold-sweep seconds of the sequential (one Dijkstra per
#: destination) path, pinned on this class of machine immediately
#: before the batched kernel landed.  The batched sweeps must beat them
#: by ``BATCH_SPEEDUP_FLOOR``; the JSON report records both sides.
SEQUENTIAL_COLD_SWEEP_SECONDS = {"fthx": 1.2, "fatpaths": 7.0}


def test_perf_batched_cold_sweep_speedup(benchmark, report_dir):
    """Destination-batched cold sweeps vs the pinned sequential timings.

    fthx routes one weight *column* per destination (per-column weight
    matrix); fatpaths adds per-layer masked views and the layer-0
    fallback scan — together they exercise every mode of
    ``tree_core_batch``.  Both must reproduce the engines' golden
    digests (pinned in tests/test_batched_routing.py) while clearing
    the speedup floor over the sequential implementation they replaced.
    """
    from repro.routing import create_engine
    from repro.routing.base import batched_sweep_enabled

    assert batched_sweep_enabled()
    payload = {}

    def sweep(name):
        t0 = time.perf_counter()
        fabric = OpenSM(t2hx_hyperx()).run(create_engine(name))
        new_s = time.perf_counter() - t0
        seed_s = SEQUENTIAL_COLD_SWEEP_SECONDS[name]
        payload[name] = {
            "new_s": new_s,
            "sequential_s": seed_s,
            "speedup": seed_s / new_s,
            "floor": BATCH_SPEEDUP_FLOOR,
            "num_vls": fabric.num_vls,
            "digest": _lft_digest(fabric),
        }
        return fabric

    benchmark.pedantic(lambda: sweep("fthx"), rounds=1, iterations=1)
    sweep("fatpaths")

    payload["peak_rss_bytes"] = _peak_rss_bytes()
    benchmark.extra_info.update(payload)
    (report_dir / "perf_batched_speedup.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    for name in SEQUENTIAL_COLD_SWEEP_SECONDS:
        assert payload[name]["speedup"] >= BATCH_SPEEDUP_FLOOR, payload


def test_perf_bulk_path_resolution(benchmark, plane, report_dir):
    """All-pairs matrix walk vs the per-pair reference resolver.

    ``Fabric.resolve_paths`` walks all 672x672 pairs simultaneously as
    column vectors; ``_snapshot_paths`` (kept as the executable spec,
    and what every resweep used to do twice) resolves them one by one."""
    net, fabric = plane

    res = benchmark(fabric.resolve_paths)

    snap_best = np.inf
    for _ in range(2):
        t0 = time.perf_counter()
        snap = _snapshot_paths(fabric)
        snap_best = min(snap_best, time.perf_counter() - t0)
    # The speedup must not change a single verdict.
    lost = sum(1 for p in snap.values() if p is None)
    assert res.num_unreachable == lost
    for (src, dst), path in list(snap.items())[::5001]:
        assert res.reachable(src, dst) == (path is not None)

    speedup = snap_best / benchmark.stats["mean"]
    payload = {
        "pairs": len(res.terminals) * (len(res.terminals) - 1),
        "bulk_mean_s": benchmark.stats["mean"],
        "per_pair_best_s": snap_best,
        "speedup": speedup,
        "floor": SPEEDUP_FLOOR,
    }
    benchmark.extra_info.update(payload)
    (report_dir / "perf_bulk_resolution.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert speedup >= SPEEDUP_FLOOR, payload


def test_perf_resweep_single_cable(benchmark, report_dir):
    """Single-cable heavy resweep of the full DFSSSP plane.

    The issue's second headline: >= 10x under the pre-engine 7.4 s
    (dominated by two per-pair snapshots).  Budget is absolute; the
    post-resweep digest and every report counter are pinned to the
    seed implementation's output."""
    net = t2hx_hyperx()
    fabric = OpenSM(net).run(DfssspRouting())
    _failed_used_cable(net, fabric)

    report = benchmark.pedantic(
        lambda: resweep(fabric, DfssspRouting()), rounds=1, iterations=1
    )
    assert _lft_digest(fabric) == SEED_T2HX["resweep_digest"]
    for key, want in SEED_T2HX["resweep_report"].items():
        assert getattr(report, key) == want, key
    assert report.num_unreachable == 0

    new_s = benchmark.stats["mean"]
    payload = {
        "new_s": new_s,
        "seed_s": SEED_T2HX["resweep_seconds"],
        "speedup_vs_seed": SEED_T2HX["resweep_seconds"] / new_s,
        "sweep_seconds": report.sweep_seconds,
        "dests_recomputed": report.dests_recomputed,
        "digest": SEED_T2HX["resweep_digest"],
    }
    benchmark.extra_info.update(payload)
    (report_dir / "perf_resweep_single_cable.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert new_s < 2.5, payload


class _ForcedHeavyMinHop(MinHopRouting):
    supports_incremental_resweep = False


def test_perf_incremental_resweep(benchmark, report_dir):
    """Destination-scoped incremental resweep vs the forced heavy sweep,
    on identically faulted copies of the full MinHop plane."""
    planes = []
    for engine in (MinHopRouting(), _ForcedHeavyMinHop()):
        net = t2hx_hyperx()
        fabric = OpenSM(net).run(engine)
        _failed_used_cable(net, fabric)
        planes.append((fabric, engine))
    (inc_fabric, inc_engine), (heavy_fabric, heavy_engine) = planes

    inc_report = benchmark.pedantic(
        lambda: resweep(inc_fabric, inc_engine), rounds=1, iterations=1
    )
    t0 = time.perf_counter()
    heavy_report = resweep(heavy_fabric, heavy_engine)
    heavy_s = time.perf_counter() - t0

    # Byte-identical outcome, a fraction of the destinations recomputed.
    assert inc_fabric.dump_lft() == heavy_fabric.dump_lft()
    assert inc_fabric.vl_of_dlid == heavy_fabric.vl_of_dlid
    assert inc_report.paths_changed == heavy_report.paths_changed
    # The real guarantee is the work reduction: only the stale
    # destinations get re-routed.  Wall-clock gains are smaller than
    # the 6x destination ratio because both paths share the report
    # diff and the full VL relayer, so the time floor stays modest.
    assert inc_report.dests_recomputed * 5 <= heavy_report.dests_recomputed

    speedup = heavy_s / benchmark.stats["mean"]
    floor = 1.5 * SPEEDUP_FLOOR / 10.0
    payload = {
        "incremental_mean_s": benchmark.stats["mean"],
        "heavy_s": heavy_s,
        "speedup": speedup,
        "floor": floor,
        "dests_incremental": inc_report.dests_recomputed,
        "dests_heavy": heavy_report.dests_recomputed,
    }
    benchmark.extra_info.update(payload)
    (report_dir / "perf_incremental_resweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert speedup >= floor, payload


def test_perf_whatif_exhaustive_audit(benchmark, plane, report_dir):
    """Exhaustive k=1 what-if certification of the full DFSSSP plane.

    The verifier's acceptance bar: every switch cable of the 672-node
    12x8 HyperX judged (affected pairs, disconnection, residual-CDG
    deadlock freedom, load-shift bound) in seconds, straight off the
    dense matrices — no simulation, no re-routing.  Budget is absolute
    and ~10x the current ~0.5 s."""
    from repro.analysis.whatif import audit_whatif

    net, fabric = plane
    report = benchmark.pedantic(
        lambda: audit_whatif(fabric), rounds=1, iterations=1
    )
    assert len(report.cables) == len(net.switch_cables())
    assert report.bridges == []
    assert not any(v.credit_loop_exposed for v in report.cables)
    assert sorted(v.rank for v in report.cables) == list(
        range(1, len(report.cables) + 1)
    )

    payload = {
        "audit_s": benchmark.stats["mean"],
        "cables": len(report.cables),
        "pairs_total": report.pairs_total,
        "per_cable_ms": 1e3 * benchmark.stats["mean"] / len(report.cables),
    }
    benchmark.extra_info.update(payload)
    (report_dir / "perf_whatif_audit.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert benchmark.stats["mean"] < 5.0, payload
