"""Cold vs warm campaign-cell wall clock over the batched phase pipeline.

The tentpole claim of the batching + mmap-cache work, measured end to
end: a *warm* 672-node t2hx campaign cell — fabric attached zero-copy
from the shared ``.rows.npy`` sidecar, phases materialised through the
bulk per-destination path resolution, simulated from prebuilt
:class:`~repro.sim.batch.MessageBatch` arrays — completes in well under
a second of wall clock, and produces values bit-identical to the cold
(freshly routed) cell.

Two cells are pinned:

* ``imb:Allreduce:1048576`` — a Figure 4/5-style IMB cell; its warm
  wall clock is asserted against :data:`WARM_CELL_BUDGET` (default 1 s,
  relaxable via ``PERF_WARM_CELL_BUDGET`` for noisy CI runners).
* ``imb:Alltoall:1048576`` — the paper's heaviest collective (671
  phases x 671 messages); recorded for the report JSON and checked
  for cold/warm value identity, budget-free (its cost is the fairness
  solve itself, not the representation).

JSON artifacts land in ``benchmarks/out/`` for the perf-smoke upload.
"""

from __future__ import annotations

import json
import os
import time

from repro.campaign.engine import execute_cell
from repro.campaign.ledger import STATUS_COMPLETED
from repro.experiments.configs import (
    clear_fabric_cache,
    get_fabric_cache_dir,
    reset_fabric_cache_stats,
    set_fabric_cache_dir,
)
from repro.experiments.runner import RunSpec

import pytest

#: Wall-clock ceiling for the warm Allreduce cell (seconds).
WARM_CELL_BUDGET = float(os.environ.get("PERF_WARM_CELL_BUDGET", "1.0"))

#: The paper's full-machine scale: 672 terminals on the t2hx HyperX.
NUM_NODES = 672


@pytest.fixture()
def cache_dir(tmp_path_factory):
    """A fresh shared fabric-cache directory, worker-attached like a
    campaign's (:func:`repro.campaign.engine._init_worker` defaults).

    Function-scoped so each test's first cell really routes cold — a
    shared directory would let the second test's "cold" run attach to
    the first test's sidecar."""
    d = tmp_path_factory.mktemp("fabric-cache")
    previous = get_fabric_cache_dir()
    set_fabric_cache_dir(str(d))
    yield d
    set_fabric_cache_dir(previous)


def _spec(benchmark_name: str) -> RunSpec:
    return RunSpec(
        "hx-dfsssp-linear",
        benchmark_name,
        num_nodes=NUM_NODES,
        reps=1,
        scale=1,
        sim_mode="static",
        preflight=False,
    )


def _run_cell(benchmark_name: str) -> tuple[float, dict]:
    """One cell in this process, memory cache dropped first so the cell
    pays the disk/mmap path a fresh worker would."""
    clear_fabric_cache()
    reset_fabric_cache_stats()
    t0 = time.perf_counter()
    record = execute_cell({"spec": _spec(benchmark_name).to_dict()})
    elapsed = time.perf_counter() - t0
    assert record["status"] == STATUS_COMPLETED, record.get("error")
    return elapsed, record


def test_perf_warm_allreduce_cell(cache_dir, report_dir):
    """Warm 672-node Allreduce cell: mmap attach + batched phases < 1 s."""
    cold_s, cold = _run_cell("imb:Allreduce:1048576")
    assert cold["fabric_cache"]["routed"] == 1, cold["fabric_cache"]

    warm_times = []
    for _ in range(3):
        warm_s, warm = _run_cell("imb:Allreduce:1048576")
        fc = warm["fabric_cache"]
        assert fc["routed"] == 0 and fc["disk_hits"] == 1, fc
        assert fc["mmap_attaches"] == 1, fc
        assert warm["values"] == cold["values"]  # bit-identical
        warm_times.append(warm_s)

    payload = {
        "cell": "hx-dfsssp-linear/imb:Allreduce:1048576",
        "num_nodes": NUM_NODES,
        "cold_s": cold_s,
        "warm_s": min(warm_times),
        "warm_runs_s": warm_times,
        "warm_budget_s": WARM_CELL_BUDGET,
        "value": cold["best"],
    }
    (report_dir / "perf_phase_batch_cell.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert min(warm_times) < WARM_CELL_BUDGET, payload


def test_perf_warm_alltoall_cell(cache_dir, report_dir):
    """Warm 672-node Alltoall cell (671 phases): value-identical to the
    cold cell; wall clock recorded for the report, not budgeted."""
    cold_s, cold = _run_cell("imb:Alltoall:1048576")
    assert cold["fabric_cache"]["routed"] == 1, cold["fabric_cache"]
    warm_s, warm = _run_cell("imb:Alltoall:1048576")
    fc = warm["fabric_cache"]
    assert fc["routed"] == 0 and fc["mmap_attaches"] == 1, fc
    assert warm["values"] == cold["values"]  # bit-identical

    payload = {
        "cell": "hx-dfsssp-linear/imb:Alltoall:1048576",
        "num_nodes": NUM_NODES,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "value": cold["best"],
    }
    (report_dir / "perf_phase_batch_alltoall.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
