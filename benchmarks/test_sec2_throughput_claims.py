"""Section 2's theory claims, measured on the flow model.

* §2.1: "a 2-to-1 oversubscription cuts the network cost by more than
  50% however reduces the uniform random throughput to 50%" (for the
  switch-level network; endpoint gear is unaffected),
* §2.2: "A HyperX network designed with only 50% bisection bandwidth
  can still provide 100% throughput for uniform random" but "the worst
  case traffic will only achieve 50% throughput",
* §1/§2: the HyperX's cost structure beats the Fat-Tree's (AOC count,
  switch ports) — quantified with the packaging-aware cost model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import make_rng
from repro.core.units import GIB, MIB
from repro.experiments.reporting import series_table
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.routing import DfssspRouting, FtreeRouting
from repro.sim.engine import FlowSimulator
from repro.topology import (
    compare_planes,
    fattree_packaging,
    hyperx,
    hyperx_packaging,
    plane_cost,
    three_level_fattree,
    t2hx_fattree,
    t2hx_hyperx,
)
from repro.workloads.patterns import shift_pattern


def _pairs(net, pattern: str, seed: int = 0):
    terminals = net.terminals
    n = len(terminals)
    rng = make_rng(seed)
    if pattern == "uniform":
        perm = rng.permutation(n)
        return [
            (terminals[i], terminals[int(perm[i])])
            for i in range(n)
            if terminals[i] != terminals[int(perm[i])]
        ]
    # adversarial: global shift by half the machine (crosses the
    # HyperX's weak-dimension bisection for every pair).
    return [(terminals[i], terminals[(i + n // 2) % n]) for i in range(n)]


def _permutation_throughput(net, fabric, pattern: str, seed: int = 0) -> float:
    """Mean per-pair fraction of line rate under *static* routing."""
    pairs = _pairs(net, pattern, seed)
    terminals = net.terminals
    job = Job(fabric, terminals)
    rank_of = {t: r for r, t in enumerate(terminals)}
    phase = [(rank_of[a], rank_of[b], 1.0 * MIB) for a, b in pairs]
    program = job.materialize([phase], label=pattern)
    sim = FlowSimulator(net, mode="static")
    bws = [bw for _, bw in sim.pair_bandwidths(program.phases[0])]
    return float(np.mean(bws)) / (3.4 * GIB)


def _adaptive_throughput(net, pattern: str, seed: int = 0) -> float:
    """The same metric with UGAL-style adaptive per-flow routing — the
    regime section 2.2's theoretical claims assume."""
    from repro.routing.dal import DalSelector
    from repro.sim.adaptive import AdaptiveFlowRouter
    from repro.sim.flows import Message, Phase, Program

    router = AdaptiveFlowRouter(net, DalSelector(net, num_detours=4, seed=0))
    msgs = [
        Message(a, b, 1.0 * MIB, router.choose(a, b, 1.0 * MIB))
        for a, b in _pairs(net, pattern, seed)
    ]
    sim = FlowSimulator(net, mode="static")
    bws = [bw for _, bw in sim.pair_bandwidths(Phase(msgs))]
    return float(np.mean(bws)) / (3.4 * GIB)


@pytest.fixture(scope="module")
def planes():
    hx = t2hx_hyperx()
    ft = t2hx_fattree()
    ft_over = three_level_fattree(
        num_edge_switches=48, terminals_per_edge=14,
        uplinks_per_edge=7,  # 2:1 oversubscription (14 down, 7 up)
        num_directors=6, name="t2-fattree-2to1",
    )
    return {
        "hyperx": (hx, OpenSM(hx).run(DfssspRouting())),
        "fattree": (ft, OpenSM(ft).run(FtreeRouting())),
        "fattree-2to1": (ft_over, OpenSM(ft_over).run(FtreeRouting())),
    }


def test_sec2_throughput_claims(benchmark, planes, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = {}
    for name, (net, fabric) in planes.items():
        uni = _permutation_throughput(net, fabric, "uniform")
        adv = _permutation_throughput(net, fabric, "adversarial")
        rows[name] = [uni, adv]
    hx_net = planes["hyperx"][0]
    rows["hyperx+AR"] = [
        _adaptive_throughput(hx_net, "uniform"),
        _adaptive_throughput(hx_net, "adversarial"),
    ]
    write_report(
        "sec2_throughput",
        series_table(
            "Section 2 — fraction of line rate (columns: uniform random, "
            "adversarial bisect)",
            [0, 1], rows, formatter=lambda v: f"{v:.0%}", col_name="pattern",
        )
        + "\ntheory (section 2): full-bisection FT ~100/100, 2:1 FT 50/50,"
        " HyperX+AR 100/50; static routing falls short of all of them"
        " (the paper's [30]).",
    )

    # d-mod-k's design point: the Fat-Tree serves shift permutations at
    # full rate (Zahavi) even though random permutations collide [30].
    assert rows["fattree"][1] > 0.9
    assert 0.35 < rows["fattree"][0] < 0.8
    # 2:1 oversubscription costs uniform-random throughput.
    assert rows["fattree-2to1"][0] < 0.8 * rows["fattree"][0]
    # Statically routed HyperX: adversarial traffic collapses far below
    # uniform — the gap PARX/AR exist to close (sections 1 and 3).
    assert rows["hyperx"][1] < 0.5 * rows["hyperx"][0]
    # With adaptive routing the section 2.2 claims emerge: uniform
    # climbs toward line rate (flow-granularity UGAL reaches ~75%; true
    # per-packet AR would close the rest), and the worst case lands at
    # the predicted ~50% bound.
    assert rows["hyperx+AR"][0] > 0.70
    assert rows["hyperx+AR"][0] > rows["hyperx"][0]
    assert 0.35 < rows["hyperx+AR"][1] <= 0.60
    assert rows["hyperx+AR"][1] > 2 * rows["hyperx"][1]

    benchmark.extra_info.update(
        {f"{k}_uniform": v[0] for k, v in rows.items()}
    )


def test_sec1_cost_structure(benchmark, write_report):
    """The introduction's economics: HyperX cheaper than the Fat-Tree,
    and 2:1 oversubscription cuts the Fat-Tree's switch-network cost by
    roughly half."""
    hx = t2hx_hyperx()
    ft = t2hx_fattree()
    ft_over = three_level_fattree(
        num_edge_switches=48, terminals_per_edge=14,
        uplinks_per_edge=7, num_directors=6,
    )
    costs = benchmark.pedantic(
        lambda: {
            "hyperx": plane_cost(hx, hyperx_packaging(hx)),
            "fattree": plane_cost(ft, fattree_packaging(ft)),
            "fattree-2to1": plane_cost(ft_over, fattree_packaging(ft_over)),
        },
        rounds=1, iterations=1,
    )
    lines = ["Section 1 — deployment cost (672 nodes)"]
    for name, c in costs.items():
        lines.append(
            f"  {name:14s} ${c.total:>10,.0f}  ports={c.switch_ports:5d} "
            f"AOC={c.aoc_cables:4d} DAC={c.dac_cables:4d}"
        )
    write_report("sec1_cost", "\n".join(lines))

    assert costs["hyperx"].total < costs["fattree"].total
    # Network-only cost (excluding per-node HCAs, identical everywhere).
    def network(c):
        return c.total - c.hcas * 450.0

    assert network(costs["fattree-2to1"]) < 0.6 * network(costs["fattree"])
    # The paper's AOC pain: the Fat-Tree needs more optics than the
    # rack-packaged HyperX.
    assert costs["fattree"].aoc_cables > costs["hyperx"].aoc_cables
