"""Parallel-sweep speedup gate: the pool must actually buy wall-clock.

The correctness story (bit-identical tables at any worker count) lives
in ``tests/test_parallel_sweep.py``; this module pins the *performance*
story: destination-sharding the 10k-endpoint fthx cold sweep across 4
workers must beat the serial sweep by ``PERF_PARALLEL_SWEEP_FLOOR``
(default 3x).  fthx is the honest case — its per-destination weight
columns dominate the sweep, so the speedup only materialises because
workers evaluate the weights themselves from the shared profile arrays
instead of receiving precomputed blocks.

The serial-vs-parallel timings and digests land in
``benchmarks/out/perf_parallel_sweep.json``.  Machines with fewer than
4 cores skip: an oversubscribed pool proves nothing about the floor.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

import pytest

from repro.core.parallel import (
    column_floor,
    parallel_stats,
    reset_parallel_stats,
    shutdown_sweep_pool,
    sweep_workers,
)
from repro.ib.fabric import Fabric
from repro.ib.subnet_manager import _assign_lids
from repro.routing import create_engine
from repro.topology.t2hx import t2hx_hyperx

#: Required parallel-vs-serial cold-sweep speedup at 4 workers.
SPEEDUP_FLOOR = float(os.environ.get("PERF_PARALLEL_SWEEP_FLOOR", "3"))

WORKERS = 4
SCALE = 0.25  # 48x32 HyperX: 1536 switches, 10752 endpoints


def _cold_sweep(net, lidmap) -> tuple[float, str]:
    """One fthx cold route; returns (sweep seconds, LFT digest)."""
    engine = create_engine("fthx")
    fabric = Fabric(net, lidmap, engine_name="fthx")
    fabric.install_terminal_hops()
    t0 = time.perf_counter()
    engine.compute(fabric)
    secs = time.perf_counter() - t0
    digest = hashlib.sha256(fabric.dump_lft().encode()).hexdigest()
    return secs, digest


def test_perf_parallel_sweep_speedup(report_dir):
    cores = os.cpu_count() or 1
    if cores < WORKERS:
        pytest.skip(
            f"need >= {WORKERS} cores to measure the speedup floor "
            f"(machine has {cores})"
        )
    net = t2hx_hyperx(scale=SCALE)
    lidmap = _assign_lids(net, "sequential", 0)
    net.switch_graph()  # warm the CSR cache outside the timed sweeps

    with sweep_workers(1):
        serial_s, serial_digest = _cold_sweep(net, lidmap)
    reset_parallel_stats()
    try:
        with sweep_workers(WORKERS), column_floor(128):
            parallel_s, parallel_digest = _cold_sweep(net, lidmap)
        stats = parallel_stats()
    finally:
        shutdown_sweep_pool()

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    payload = {
        "scale": SCALE,
        "switches": net.num_switches,
        "endpoints": net.num_terminals,
        "workers": WORKERS,
        "serial_seconds": round(serial_s, 2),
        "parallel_seconds": round(parallel_s, 2),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "lft_sha256": serial_digest,
        "parallel_sweeps": stats["parallel_sweeps"],
        "serial_fallbacks": stats["serial_fallbacks"],
    }
    (report_dir / "perf_parallel_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    # The parallel run must have actually used the pool (a silent serial
    # fallback would "pass" any equality check while measuring nothing)
    # and reproduced the serial bytes.
    assert stats["parallel_sweeps"] >= 1, payload
    assert stats["serial_fallbacks"] == 0, payload
    assert parallel_digest == serial_digest, payload
    assert speedup >= SPEEDUP_FLOOR, payload
