"""Figure 4: IMB collectives — relative gain grids over the baseline.

The paper sweeps six MPI collectives over node counts 7..672 and
message sizes 1 B..4 MiB for all five configurations, colouring each
cell with the relative gain over "Fat-Tree / ftree / linear".  This
bench regenerates the grids at half scale (a 6x4 HyperX / 12-edge
Fat-Tree, 168 nodes — the shape statements are scale-free) with a
representative size subset.

Shape assertions (paper section 5.1):

* Bcast/Reduce: the HyperX with DFSSSP is on par with the baseline
  (small |gain|) across small/medium messages,
* Alltoall at 14 nodes on HyperX/DFSSSP/linear: strongly negative at
  large sizes (the single-cable bottleneck, "echoes exactly our
  analysis of Figure 1"),
* PARX: "the least effective option for these micro-benchmarks ...
  especially for the lower spectrum of investigated message sizes" —
  negative gains for small messages across operations (bfo overhead).
"""

from __future__ import annotations

import pytest

from repro.core.units import KIB, MIB
from repro.experiments import THE_FIVE, BASELINE, RunSpec, relative_gain, run_capability
from repro.experiments.reporting import gain_grid
from repro.mpi.collectives import (
    binomial_bcast,
    binomial_gather,
    binomial_reduce,
    binomial_scatter,
    pairwise_alltoall,
    recursive_doubling_allreduce,
)
from repro.workloads.netbench import imb_latency

SCALE = 2
NODE_COUNTS = (7, 14, 28, 56, 112)
SIZES = (8.0, 4.0 * KIB, 256.0 * KIB, 4.0 * MIB)
OPS = ("Bcast", "Gather", "Scatter", "Reduce", "Allreduce", "Alltoall")

_PROFILES = {
    "Bcast": binomial_bcast,
    "Gather": binomial_gather,
    "Scatter": binomial_scatter,
    "Reduce": binomial_reduce,
    "Allreduce": recursive_doubling_allreduce,
    "Alltoall": pairwise_alltoall,
}


def _measure_all() -> dict[tuple[str, str, int, float], float]:
    """latency[combo, op, nodes, size] over the full grid."""
    out: dict[tuple[str, str, int, float], float] = {}
    for combo in THE_FIVE:
        for op in OPS:
            for n in NODE_COUNTS:
                profile = _PROFILES[op](n, 1.0 * MIB)
                for size in SIZES:
                    spec = RunSpec(
                        combo.key, f"imb:{op}:{size:g}", num_nodes=n,
                        reps=1, scale=SCALE, seed=0, sim_mode="static",
                    )
                    res = run_capability(
                        spec,
                        lambda job, sim, op=op, size=size: imb_latency(
                            job, sim, op, size
                        ),
                        rank_phases_for_profile=profile,
                    )
                    out[(combo.key, op, n, size)] = res.best
    return out


@pytest.fixture(scope="module")
def grid():
    return _measure_all()


def test_fig4_grids(benchmark, grid, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    blocks = []
    gains: dict[tuple[str, str, float, int], float] = {}
    for combo in THE_FIVE[1:]:
        for op in OPS:
            cells = {}
            for n in NODE_COUNTS:
                for size in SIZES:
                    g = relative_gain(
                        grid[(BASELINE.key, op, n, size)],
                        grid[(combo.key, op, n, size)],
                    )
                    cells[(size, n)] = g
                    gains[(combo.key, op, size, n)] = g
            blocks.append(
                gain_grid(
                    f"Figure 4 ({op}) — {combo.label} vs baseline",
                    SIZES, NODE_COUNTS, cells,
                )
            )
    write_report("fig4_imb_collectives", "\n\n".join(blocks))
    benchmark.extra_info["cells"] = len(gains)

    # --- shape assertions -------------------------------------------------
    # 1. HyperX/DFSSSP/linear on par for Bcast/Reduce in the regimes the
    #    flow model is faithful in: latency-bound small messages (the
    #    binomial tree) and pipeline-chained large messages.  At the
    #    4 KiB mid-size our model over-penalises the HyperX relative to
    #    the paper (documented in EXPERIMENTS.md): real Open MPI 1.10's
    #    per-message CPU overheads mask the shared-cable term there.
    for op in ("Bcast", "Reduce"):
        for n in NODE_COUNTS:
            for size in (8.0, 256.0 * KIB, 4.0 * MIB):
                assert abs(gains[("hx-dfsssp-linear", op, size, n)]) < 0.30

    # 2. The 14-node Alltoall single-cable collapse at large sizes.
    assert gains[("hx-dfsssp-linear", "Alltoall", 4.0 * MIB, 14)] < -0.30

    # 3. PARX hurts small messages across all operations (bfo overhead).
    parx_small = [
        gains[("hx-parx-clustered", op, 8.0, n)]
        for op in OPS
        for n in NODE_COUNTS
    ]
    assert sum(1 for g in parx_small if g < -0.05) > len(parx_small) * 0.7


def test_fig4_parx_recovers_alltoall_bandwidth(grid):
    """PARX's purpose: at the 14-node dense case the large-message
    Alltoall must beat minimal-routed DFSSSP."""
    parx = grid[("hx-parx-clustered", "Alltoall", 14, 4.0 * MIB)]
    dfsssp = grid[("hx-dfsssp-linear", "Alltoall", 14, 4.0 * MIB)]
    assert parx < dfsssp


def test_fig4_random_placement_mitigates(grid):
    """Section 3.1's mitigation: random placement softens the dense
    Alltoall bottleneck relative to linear placement."""
    rnd = grid[("hx-dfsssp-random", "Alltoall", 14, 4.0 * MIB)]
    lin = grid[("hx-dfsssp-linear", "Alltoall", 14, 4.0 * MIB)]
    assert rnd < lin
