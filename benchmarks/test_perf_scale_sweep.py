"""Scale benchmarks: cold-routing 10k+-endpoint HyperX planes.

The paper's premise is HyperX *at scale*; the batched sweep kernel and
the memory-lean dense state exist so the routing layer keeps working two
orders of magnitude past the 672-node testbed.  These cases cold-route
fractional-scale t2hx planes — ``scale=0.25`` is a 48x32 lattice, 1536
switches x 7 terminals = 10752 endpoints — under pinned wall-clock *and*
peak-RSS budgets, so a memory-hungry regression fails as loudly as a
slow one.

Only the routing sweep itself is timed (fabric construction, terminal
hops, ``engine.compute``): virtual-lane layering is a separate
per-destination Python pass with its own budgets elsewhere, and the
engines under test here leave deadlock freedom to it anyway.  Budgets
sit ~3x above current numbers — machine noise headroom, while an
accidental return to per-destination Python sweeps (or to full-width
scratch matrices) still fails.

``scale_smoke`` is the CI-sized variant (384 switches, 2688 endpoints);
the full 10k case runs where minutes-long benchmarks are acceptable.
"""

from __future__ import annotations

import json
import resource
import time

import numpy as np

from repro.core.units import MIB, ru_maxrss_to_bytes
from repro.ib.fabric import Fabric
from repro.ib.subnet_manager import _assign_lids
from repro.routing import create_engine
from repro.topology.t2hx import t2hx_hyperx

#: Engines raced at scale: destination-independent weights (minhop) and
#: per-destination weight columns (fthx) exercise both kernel modes.
ENGINES = ("minhop", "fthx")

#: (wall seconds, peak RSS MiB) budgets per engine, ~2-3x measured
#: (minhop 7.3 s / 200 MiB, fthx 182 s / 581 MiB at scale=0.25;
#: minhop 1.0 s / 79 MiB, fthx 11.7 s / 321 MiB at scale=0.5).
BUDGET_10K = {"minhop": (25.0, 1024.0), "fthx": (450.0, 2048.0)}
BUDGET_SMOKE = {"minhop": (5.0, 768.0), "fthx": (40.0, 1024.0)}


def _peak_rss_mib() -> float:
    """Process high-water RSS in MiB, normalized for the ru_maxrss unit
    quirk (KiB on Linux, bytes on macOS)."""
    rss = ru_maxrss_to_bytes(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    return rss / MIB


def _cold_route(net, lidmap, name: str) -> tuple[Fabric, float]:
    """Route one engine cold; returns the fabric and sweep seconds."""
    engine = create_engine(name)
    t0 = time.perf_counter()
    fabric = Fabric(net, lidmap, engine_name=name)
    fabric.install_terminal_hops()
    engine.compute(fabric)
    return fabric, time.perf_counter() - t0


def _run_scale_case(scale: float, budgets: dict, out_name: str, report_dir):
    net = t2hx_hyperx(scale=scale)
    lidmap = _assign_lids(net, "sequential", 0)
    net.switch_graph()  # warm the CSR cache outside the timed sweeps
    payload: dict = {
        "scale": scale,
        "switches": net.num_switches,
        "endpoints": net.num_terminals,
        "links": len(net.links),
    }
    for name in ENGINES:
        fabric, secs = _cold_route(net, lidmap, name)
        rss = _peak_rss_mib()
        # Every endpoint column must be fully populated: a sweep that
        # "finishes fast" by dropping destinations is not a sweep.
        dense = fabric.tables.dense
        cols = [fabric.tables.column_of(d)
                for d in lidmap.terminal_lids(net)]
        assert int((dense[:, cols] >= 0).sum()) == (
            net.num_switches * len(cols)
        ), name
        time_budget, rss_budget = budgets[name]
        payload[name] = {
            "seconds": round(secs, 2),
            "peak_rss_mib": round(rss, 1),
            "dtype": str(dense.dtype),
            "time_budget_s": time_budget,
            "rss_budget_mib": rss_budget,
        }
        assert secs < time_budget, payload
        assert rss < rss_budget, payload
    (report_dir / f"{out_name}.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    return payload


def test_perf_scale_smoke_cold_sweeps(report_dir):
    """CI-sized scale gate: 384-switch, 2688-endpoint cold sweeps."""
    payload = _run_scale_case(0.5, BUDGET_SMOKE, "perf_scale_smoke", report_dir)
    assert payload["endpoints"] == 2688, payload


def test_perf_scale_10k_cold_sweeps(report_dir):
    """The headline: >= 10k endpoints cold-routed within pinned budgets.

    48x32 HyperX, 10752 endpoints.  The link-id space (~140k directed
    links) overflows int16, so this case also proves the dtype policy
    widens to int32 instead of refusing or wrapping.
    """
    payload = _run_scale_case(0.25, BUDGET_10K, "perf_scale_10k", report_dir)
    assert payload["endpoints"] >= 10_000, payload
    assert payload["minhop"]["dtype"] == "int32", payload
    assert np.iinfo(np.int16).max < payload["links"], payload
