"""Ablation: the registry engine race under scaled cable faults.

The engine registry makes every routing engine a first-class campaign
combination, so the resilience sweep can race the paper's DFSSSP and
PARX against the fault-tolerant additions (fthx, fatpaths) on identical
planes.  Two failure modes: ``random`` draws seeded keep-connected
cables (the paper's as-built condition — 15 of 864 HyperX cables were
missing, §2.3), ``adversarial`` fails each engine's statically
worst-ranked cables (the what-if verifier's certified worst case).

The published claim under test: at the paper's missing-cable count the
fault-tolerant engine sustains strictly higher all-to-all throughput
than DFSSSP — its per-dimension detour metric keeps degraded paths
short and aligned instead of redistributing load globally.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import fault_sweep_table, resilience_table
from repro.experiments.resilience import run_resilience

#: The race: the paper's engines vs the fault-tolerant additions, all
#: on the full-size HyperX plane with identical linear placement.
ENGINES = ("dfsssp", "parx", "fthx", "fatpaths")
COMBOS = tuple(f"hx-{e}-linear" for e in ENGINES)
#: Multiples of the paper's missing-cable count (level 1.0 = 15 AOCs).
LEVELS = (0.0, 1.0, 2.0)
#: A third of the machine in the all-to-all — enough contention that
#: routing quality, not terminal injection, decides the outcome.
NODES = 224


@pytest.fixture(scope="module")
def sweeps():
    return {
        mode: run_resilience(
            COMBOS, levels=LEVELS, scale=1, num_nodes=NODES,
            failure_mode=mode, midrun_failure=False,
        )
        for mode in ("random", "adversarial")
    }


def _cell(result, combo_key: str, level: float):
    for c in result.cells:
        if c.combo_key == combo_key and c.level == level:
            return c
    raise AssertionError(f"missing cell {combo_key}@{level}")


def test_ablation_engine_race(benchmark, sweeps, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = fault_sweep_table([sweeps["random"], sweeps["adversarial"]])
    report = "\n\n".join(
        [resilience_table(sweeps[m]) for m in ("random", "adversarial")]
        + [table]
    )
    write_report("fault_sweep_race", report)
    benchmark.extra_info["table"] = table

    # No fault level may cost reachability on any engine.
    for mode, result in sweeps.items():
        assert result.total_unreachable == 0, mode

    # The headline: at the paper's missing-cable count (level 1.0) the
    # fault-tolerant engine beats DFSSSP on both failure modes.
    for mode in ("random", "adversarial"):
        dfsssp = _cell(sweeps[mode], "hx-dfsssp-linear", 1.0)
        fthx = _cell(sweeps[mode], "hx-fthx-linear", 1.0)
        assert fthx.time < dfsssp.time, (
            mode, fthx.time, dfsssp.time,
        )
