"""Figures 6a-6i: the nine proxy applications' kernel runtimes.

Paper headline (section 5.2): looking at the best of ten runs, the
HyperX — with appropriate routing or placement — "is on par with the
Fat-Tree baseline"; AMG, FFVC, MILC (DFSSSP/linear), MiniFE, mVMC and
NTChem/qb@ll mostly land within +/-1% (or notably better).  FFVC's
input reduction above 64 nodes produces a visible runtime drop.

Our flow model makes communication a calibrated 4-45% share, so "on
par" here means within a few percent for the stencil codes and within
tens of percent for the network-bound ones — the per-app grids are in
the written report for the side-by-side reading.
"""

from __future__ import annotations

import pytest

from repro.core.units import format_time
from repro.experiments import BASELINE, THE_FIVE, RunSpec, run_capability, whisker_stats
from repro.experiments.reporting import series_table
from repro.workloads.proxyapps import PROXY_APPS

SCALE = 2
COUNTS_7 = (7, 14, 28, 56, 112)
COUNTS_POW2 = (4, 8, 16, 32, 64, 128)
POW2_APPS = {"FFVC", "MILC", "FFT"}


def _counts(name: str) -> tuple[int, ...]:
    return COUNTS_POW2 if name in POW2_APPS else COUNTS_7


@pytest.fixture(scope="module")
def results():
    out = {}
    for name, app in PROXY_APPS.items():
        for combo in THE_FIVE:
            for n in _counts(name):
                spec = RunSpec(
                    combo.key, name, num_nodes=n,
                    reps=3, scale=SCALE, seed=0, sim_mode="static",
                )
                res = run_capability(
                    spec,
                    lambda job, sim, app=app: app.kernel_runtime(job, sim),
                    rank_phases_for_profile=app.rank_phases(n),
                )
                out[(name, combo.key, n)] = whisker_stats(res.values)
    return out


def test_fig6_proxyapps(benchmark, results, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    blocks = []
    for name in PROXY_APPS:
        rows = {
            combo.label: [
                results[(name, combo.key, n)].best for n in _counts(name)
            ]
            for combo in THE_FIVE
        }
        blocks.append(
            series_table(
                f"Figure 6 ({name}) — kernel runtime, best of 3",
                _counts(name), rows, formatter=format_time,
            )
        )
    write_report("fig6_proxyapps", "\n\n".join(blocks))

    # Stencil-dominated codes: HyperX/DFSSSP/linear within a few % of
    # the baseline (the paper's +/-1% band, plus our noise).
    for name in ("AMG", "CoMD", "MiFE", "mVMC", "FFVC"):
        for n in _counts(name):
            base = results[(name, BASELINE.key, n)].best
            hx = results[(name, "hx-dfsssp-linear", n)].best
            assert abs(hx / base - 1) < 0.10, (name, n, hx / base)


def test_fig6_ffvc_input_drop(results):
    """The visible FFVC runtime drop when the cuboid shrinks above 64
    nodes (paper: 'The resulting runtime drop from 64 to 128 nodes is
    clearly visible')."""
    t64 = results[("FFVC", BASELINE.key, 64)].best
    t128 = results[("FFVC", BASELINE.key, 128)].best
    assert t128 < 0.5 * t64


def test_fig6_ntchem_strong_scales(results):
    """NTChem is the strong-scaling member: runtime must fall steeply
    with node count (Figure 6g's downward staircase)."""
    series = [results[("NTCh", BASELINE.key, n)].best for n in COUNTS_7]
    assert all(b < a for a, b in zip(series, series[1:]))
    assert series[-1] < series[0] / 5


def test_fig6_parx_less_harmful_for_apps_than_microbenchmarks(results):
    """Section 5.2: 'a less severe, but noticeable, impact of the less
    tuned bfo PML for real-world workloads' — applications spend only a
    fraction of their time communicating, so PARX's Barrier-style 2.8x+
    regressions must NOT appear in kernel runtimes."""
    for name in PROXY_APPS:
        for n in _counts(name):
            base = results[(name, BASELINE.key, n)].best
            parx = results[(name, "hx-parx-clustered", n)].best
            assert parx / base < 1.8, (name, n, parx / base)


def test_fig6_run_variability_reported(results):
    """Whisker statistics carry real spread (the 10-runs-per-cell
    methodology of section 4.4.1)."""
    st = results[("AMG", BASELINE.key, 7)]
    assert st.n == 3
    assert st.maximum > st.minimum
