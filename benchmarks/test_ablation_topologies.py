"""Ablation: the low-diameter design space — HyperX vs Dragonfly vs
Slim Fly vs Fat-Tree at matched machine size.

Section 6 names Dragonfly deployments and the theoretical Slim Fly as
the HyperX's rivals.  This bench holds the machine near the paper's
size (~650-720 nodes), routes every topology with the same deadlock-
free engine (DFSSSP), and measures uniform-random permutation
throughput, diameter, and infrastructure counts — the comparison the
related-work section makes qualitatively.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import make_rng
from repro.core.units import GIB, MIB
from repro.experiments.reporting import series_table
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.routing import DfssspRouting, FtreeRouting, audit_fabric
from repro.sim.engine import FlowSimulator
from repro.topology import (
    diameter,
    dragonfly,
    hyperx,
    three_level_fattree,
)
from repro.topology.properties import cable_count
from repro.topology.slimfly import slimfly


def _systems():
    return {
        "hyperx-12x8-T7": (hyperx((12, 8), 7), DfssspRouting()),
        "dragonfly-a12p6h5": (
            dragonfly(12, 6, 5, num_groups=10), DfssspRouting()
        ),
        "slimfly-q13-T2": (
            slimfly(13, terminals_per_switch=2), DfssspRouting()
        ),
        "fattree-3level": (three_level_fattree(), FtreeRouting()),
    }


def _uniform_throughput(net, fabric, seed: int = 0) -> float:
    terminals = net.terminals
    n = len(terminals)
    rng = make_rng(seed)
    perm = rng.permutation(n)
    job = Job(fabric, terminals)
    phase = [
        (i, int(perm[i]), 1.0 * MIB) for i in range(n) if i != perm[i]
    ]
    sim = FlowSimulator(net, mode="static")
    program = job.materialize([phase], label="uniform")
    bws = [b for _, b in sim.pair_bandwidths(program.phases[0])]
    return float(np.mean(bws)) / (3.4 * GIB)


@pytest.fixture(scope="module")
def compared():
    out = {}
    for name, (net, engine) in _systems().items():
        fabric = OpenSM(net).run(engine)
        audit = audit_fabric(fabric, sample_pairs=400, check_deadlock=False)
        assert audit.unreachable == 0 and audit.loops == 0, name
        out[name] = {
            "nodes": net.num_terminals,
            "switches": net.num_switches,
            "cables": cable_count(net, switches_only=True),
            "diameter": diameter(net),
            "uniform": _uniform_throughput(net, fabric),
            "vls": fabric.num_vls,
        }
    return out


def test_ablation_topology_design_space(benchmark, compared, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = {
        f"{name} ({d['nodes']}n/{d['switches']}sw/{d['cables']}c, "
        f"diam {d['diameter']}, {d['vls']}VL)": [d["uniform"]]
        for name, d in compared.items()
    }
    write_report(
        "ablation_topologies",
        series_table(
            "Low-diameter design space — uniform-random permutation "
            "throughput (fraction of line rate), DFSSSP/ftree static",
            [0], rows, formatter=lambda v: f"{v:.0%}", col_name="metric",
        ),
    )

    # Structural claims from the literature, verified on our builds:
    assert compared["hyperx-12x8-T7"]["diameter"] == 2
    assert compared["slimfly-q13-T2"]["diameter"] == 2
    assert compared["dragonfly-a12p6h5"]["diameter"] == 3
    assert compared["fattree-3level"]["diameter"] == 4

    # Slim Fly's selling point: the fewest cables per node among the
    # full-throughput designs... for its switch count it is cable-heavy,
    # but per *node* the direct topologies all undercut the Fat-Tree.
    ft = compared["fattree-3level"]
    for name in ("hyperx-12x8-T7", "dragonfly-a12p6h5"):
        d = compared[name]
        assert d["cables"] / d["nodes"] < ft["cables"] / ft["nodes"]

    # All direct low-diameter designs sustain a healthy share of line
    # rate on uniform traffic even with static routing.
    for name in ("hyperx-12x8-T7", "dragonfly-a12p6h5", "slimfly-q13-T2"):
        assert compared[name]["uniform"] > 0.4, name

    # Everyone fits QDR's lane budget.
    for name, d in compared.items():
        assert d["vls"] <= 8, name
