"""Figure 5b: IMB Barrier latency across node counts.

Paper headline (section 5.1): "PARX slows down the Barrier operation by
2.8x-6.9x, resulting in negative gains between -0.65 and -0.85 compared
to the baseline", caused by the untuned bfo PML — visible even in the
7-node case where all nodes share one switch.  The other HyperX
configurations track the baseline within a few percent.
"""

from __future__ import annotations

import pytest

from repro.core.units import format_time
from repro.experiments import BASELINE, THE_FIVE, RunSpec, run_capability, whisker_stats
from repro.experiments.reporting import series_table
from repro.mpi.collectives import dissemination_barrier
from repro.workloads.netbench import imb_latency

SCALE = 2
NODE_COUNTS = (7, 14, 28, 56, 112)


@pytest.fixture(scope="module")
def series():
    out = {}
    for combo in THE_FIVE:
        for n in NODE_COUNTS:
            spec = RunSpec(
                combo.key, "imb:Barrier:0", num_nodes=n,
                reps=5, scale=SCALE, seed=0, sim_mode="static",
            )
            res = run_capability(
                spec,
                lambda job, sim: imb_latency(job, sim, "Barrier", 0),
                rank_phases_for_profile=dissemination_barrier(n),
            )
            out[(combo.key, n)] = whisker_stats(res.values)
    return out


def test_fig5b_barrier(benchmark, series, write_report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = {
        combo.label: [series[(combo.key, n)].best for n in NODE_COUNTS]
        for combo in THE_FIVE
    }
    write_report(
        "fig5b_barrier",
        series_table(
            "Figure 5b — Barrier latency (best of 5 runs)",
            NODE_COUNTS, rows, formatter=format_time,
        ),
    )

    for n in NODE_COUNTS:
        base = series[(BASELINE.key, n)].best
        parx = series[("hx-parx-clustered", n)].best
        slowdown = parx / base
        # The paper's 2.8x-6.9x band, with slack for the model.
        assert 2.0 < slowdown < 8.0, f"PARX barrier slowdown {slowdown:.1f}x at {n}"
        # The non-PARX HyperX stays close to the baseline.
        hx = series[("hx-dfsssp-linear", n)].best
        assert abs(hx / base - 1) < 0.4

    benchmark.extra_info["parx_slowdown_7nodes"] = (
        series[("hx-parx-clustered", 7)].best / series[(BASELINE.key, 7)].best
    )


def test_fig5b_seven_node_case_is_pml_only(series):
    """Paper: the 7-node case (all nodes on one HyperX switch) isolates
    the ob1 -> bfo software regression — no network difference exists."""
    base = series[(BASELINE.key, 7)].best
    parx = series[("hx-parx-clustered", 7)].best
    hx = series[("hx-dfsssp-linear", 7)].best
    # DFSSSP/ob1 on one switch is on par with the Fat-Tree's one switch...
    assert abs(hx / base - 1) < 0.2
    # ...so the whole PARX regression at 7 nodes is the PML.
    assert parx / hx > 2.0
